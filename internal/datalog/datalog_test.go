package datalog_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/pattern"
	"repro/internal/rdf"
	"repro/internal/workload"
)

func iri(s string) rdf.Term { return rdf.IRI("http://e/" + s) }

func TestRuleValidate(t *testing.T) {
	good := datalog.Rule{
		Head: datalog.NewAtom("p", pattern.V("x")),
		Body: []datalog.Atom{datalog.NewAtom("q", pattern.V("x"))},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	unsafe := datalog.Rule{
		Head: datalog.NewAtom("p", pattern.V("y")),
		Body: []datalog.Atom{datalog.NewAtom("q", pattern.V("x"))},
	}
	if err := unsafe.Validate(); err == nil {
		t.Error("unsafe head variable accepted")
	}
	skolemOK := datalog.Rule{
		Head:    datalog.NewAtom("p", pattern.V("x"), pattern.V("z")),
		Body:    []datalog.Atom{datalog.NewAtom("q", pattern.V("x"))},
		Skolems: []string{"z"},
	}
	if err := skolemOK.Validate(); err != nil {
		t.Errorf("skolem rule rejected: %v", err)
	}
	skolemBad := datalog.Rule{
		Head:    datalog.NewAtom("p", pattern.V("x")),
		Body:    []datalog.Atom{datalog.NewAtom("q", pattern.V("x"))},
		Skolems: []string{"x"},
	}
	if err := skolemBad.Validate(); err == nil {
		t.Error("skolem of a body variable accepted")
	}
	empty := datalog.Rule{Head: datalog.NewAtom("p", pattern.C(iri("a")))}
	if err := empty.Validate(); err == nil {
		t.Error("empty body accepted")
	}
}

// Plain transitive closure: the textbook Datalog case, which Proposition 3
// proves no UCQ can express.
func TestTransitiveClosure(t *testing.T) {
	p := &datalog.Program{Rules: []datalog.Rule{
		{
			Head: datalog.NewAtom("path", pattern.V("x"), pattern.V("y")),
			Body: []datalog.Atom{datalog.NewAtom("edge", pattern.V("x"), pattern.V("y"))},
		},
		{
			Head: datalog.NewAtom("path", pattern.V("x"), pattern.V("y")),
			Body: []datalog.Atom{
				datalog.NewAtom("edge", pattern.V("x"), pattern.V("z")),
				datalog.NewAtom("path", pattern.V("z"), pattern.V("y")),
			},
		},
	}}
	store := datalog.NewStore()
	const n = 30
	for i := 0; i < n; i++ {
		store.Insert("edge", pattern.Tuple{iri(fmt.Sprintf("n%d", i)), iri(fmt.Sprintf("n%d", i+1))})
	}
	stats, err := datalog.Eval(p, store)
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n + 1) / 2
	if got := store.Facts("path").Len(); got != want {
		t.Errorf("closure size = %d, want %d", got, want)
	}
	if stats.Iterations < 2 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
	if stats.SkolemsCreated != 0 {
		t.Error("no skolems expected")
	}
}

// The Datalog translation answers Figure 1 exactly like the chase.
func TestFigure1MatchesChase(t *testing.T) {
	sys := workload.Figure1System()
	q := workload.Example1Query()
	got, stats, err := datalog.CertainAnswers(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	u, err := chase.Run(sys, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := u.CertainAnswers(q)
	if !got.Equal(want) {
		t.Errorf("datalog %v\nchase %v", got.Sorted(), want.Sorted())
	}
	if stats.SkolemsCreated == 0 {
		t.Error("the GMA has an existential: skolems expected")
	}
	if stats.FactsDerived == 0 {
		t.Error("no facts derived")
	}
}

// The headline capability: certain answers under the transitive-closure GMA
// of Proposition 3, where no finite UCQ exists. The Datalog program is
// fixed-size and complete for every chain length.
func TestProposition3ViaDatalog(t *testing.T) {
	for _, L := range []int{4, 16, 64} {
		sys := transitiveChainSystem(L)
		q := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
			pattern.TP(pattern.V("x"), pattern.C(iri("A")), pattern.V("y")),
		})
		got, _, err := datalog.CertainAnswers(sys, q)
		if err != nil {
			t.Fatal(err)
		}
		want := L * (L + 1) / 2
		if got.Len() != want {
			t.Errorf("L=%d: datalog closure = %d, want %d", L, got.Len(), want)
		}
	}
	// the program size is independent of L
	pSmall := datalog.FromSystem(transitiveChainSystem(4))
	pBig := datalog.FromSystem(transitiveChainSystem(64))
	if len(pSmall.Rules) != len(pBig.Rules) {
		t.Errorf("program size depends on data: %d vs %d", len(pSmall.Rules), len(pBig.Rules))
	}
}

func transitiveChainSystem(n int) *core.System {
	sys := core.NewSystem()
	p := sys.AddPeer("p")
	A := iri("A")
	for i := 0; i < n; i++ {
		if err := p.Add(rdf.Triple{S: iri(fmt.Sprintf("n%d", i)), P: A, O: iri(fmt.Sprintf("n%d", i+1))}); err != nil {
			panic(err)
		}
	}
	from := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(A), pattern.V("z")),
		pattern.TP(pattern.V("z"), pattern.C(A), pattern.V("y")),
	})
	to := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(A), pattern.V("y")),
	})
	if err := sys.AddMapping(core.GraphMappingAssertion{From: from, To: to, SrcPeer: "p", DstPeer: "p", Label: "transitive"}); err != nil {
		panic(err)
	}
	return sys
}

// Agreement sweep: datalog == chase on the scaled film workload and on LOD
// topologies including cycles.
func TestAgreementSweep(t *testing.T) {
	film := workload.ScaledFilmSystem(workload.FilmConfig{Films: 6, ActorsPerFilm: 2, SameAsFraction: 0.7, Seed: 3})
	queries := []pattern.Query{workload.ScaledFilmQuery(0), workload.ScaledFilmQuery(3)}
	u, err := chase.Run(film, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got, _, err := datalog.CertainAnswers(film, q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(u.CertainAnswers(q)) {
			t.Errorf("film query %d: datalog != chase", i)
		}
	}

	for _, top := range []workload.Topology{workload.Chain, workload.Cycle, workload.Star} {
		sys := workload.LODSystem(workload.LODConfig{
			Peers: 4, Topology: top, FactsPerPeer: 6, EntitiesPerPeer: 5,
			EquivFraction: 0.5, Shape: workload.EdgeToPath, Seed: 9,
		})
		q := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
			pattern.TP(pattern.V("x"), pattern.C(workload.LODPredicate(0, "via")), pattern.V("z")),
			pattern.TP(pattern.V("z"), pattern.C(workload.LODPredicate(0, "hop")), pattern.V("y")),
		})
		got, _, err := datalog.CertainAnswers(sys, q)
		if err != nil {
			t.Fatal(err)
		}
		uu, err := chase.Run(sys, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := uu.CertainAnswers(q)
		if !got.Equal(want) {
			t.Errorf("%v: datalog %d != chase %d", top, got.Len(), want.Len())
		}
	}
}

// Shared existentials across split head atoms must receive the same skolem.
func TestSkolemSharingAcrossHeadAtoms(t *testing.T) {
	sys := workload.Figure1System()
	program := datalog.FromSystem(sys)
	program.Rules = append(program.Rules, datalog.QueryRules(pattern.MustQuery(
		[]string{"f", "a"},
		pattern.GraphPattern{
			pattern.TP(pattern.V("f"), pattern.C(workload.Starring), pattern.V("n")),
			pattern.TP(pattern.V("n"), pattern.C(workload.Artist), pattern.V("a")),
		},
	)))
	store := datalog.EDBFromGraph(sys.StoredDatabase())
	if _, err := datalog.Eval(program, store); err != nil {
		t.Fatal(err)
	}
	// the path through the GMA's skolem must join: Willem Dafoe reachable
	ans := store.Facts(datalog.PredAnswer)
	found := false
	for _, tu := range ans.Sorted() {
		if tu[1] == rdf.IRI(workload.NSDB2+"Willem_Dafoe") {
			found = true
		}
	}
	if !found {
		t.Errorf("skolem-joined path missing: %v", ans.Sorted())
	}
}

// Skolems are reused per frontier tuple, not minted per derivation.
func TestSkolemDeterminism(t *testing.T) {
	sys := workload.Figure1System()
	q := workload.Example1Query()
	_, s1, err := datalog.CertainAnswers(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := datalog.CertainAnswers(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	if s1.SkolemsCreated != s2.SkolemsCreated || s1.FactsDerived != s2.FactsDerived {
		t.Errorf("evaluation not deterministic: %+v vs %+v", s1, s2)
	}
	// 6 actor-edge tuples reach the GMA (2 stored + equivalence copies),
	// each minting exactly one skolem
	if s1.SkolemsCreated != 6 {
		t.Errorf("skolems = %d, want 6", s1.SkolemsCreated)
	}
}

func TestBooleanQueryAndGraphExport(t *testing.T) {
	sys := workload.Figure1System()
	q := workload.Example1Query()
	bq, err := q.Substitute(pattern.Tuple{
		rdf.IRI(workload.NSDB1 + "Toby_Maguire"), rdf.Literal("39"),
	})
	if err != nil {
		t.Fatal(err)
	}
	program := datalog.FromSystem(sys)
	program.Rules = append(program.Rules, datalog.QueryRules(bq))
	store := datalog.EDBFromGraph(sys.StoredDatabase())
	if _, err := datalog.Eval(program, store); err != nil {
		t.Fatal(err)
	}
	if !datalog.BooleanQuery(store) {
		t.Error("boolean query should hold")
	}
	g := datalog.SkolemChaseGraph(store)
	if g.Len() < sys.StoredDatabase().Len() {
		t.Error("exported graph smaller than the stored database")
	}
	// the exported graph answers queries like the universal solution
	if pattern.EvalQuery(g, q).Len() != 6 {
		t.Errorf("exported graph answers = %d", pattern.EvalQuery(g, q).Len())
	}
}

func TestProgramStringAndValidate(t *testing.T) {
	sys := workload.Figure1System()
	p := datalog.FromSystem(sys)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if !strings.Contains(out, ":-") || !strings.Contains(out, "skolem") {
		t.Errorf("program rendering:\n%s", out)
	}
	// 6 rules per equivalence + 2 for the two-atom GMA head
	want := 6*len(sys.E) + 2
	if len(p.Rules) != want {
		t.Errorf("rules = %d, want %d", len(p.Rules), want)
	}
}

// Boolean query with empty free variable list over an empty system.
func TestEmptySystem(t *testing.T) {
	sys := core.NewSystem()
	p := sys.AddPeer("p")
	if err := p.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}); err != nil {
		t.Fatal(err)
	}
	q := pattern.MustQuery([]string{"x"}, pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(iri("p")), pattern.V("y")),
	})
	got, stats, err := datalog.CertainAnswers(sys, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || stats.SkolemsCreated != 0 {
		t.Errorf("answers = %v, stats = %+v", got.Sorted(), stats)
	}
}
