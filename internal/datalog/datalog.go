// Package datalog implements the paper's future-work item 1 (Section 5): a
// rewriting of RPS query answering into "a language more expressive than
// FO-queries, for instance Datalog". Where Proposition 3 shows that no
// finite union of conjunctive queries answers general RPSs (they encode
// transitive closure), the Datalog program produced here is finite,
// data-independent, and computes exactly the certain answers when evaluated
// bottom-up over the stored database.
//
// The translation maps RDF triples to a ternary relation t/3, names
// (IRIs and literals — the rt relation of Section 3) to a unary relation
// name/1, each equivalence mapping to six copy rules, and each graph
// mapping assertion to one rule per head atom. Existential variables in
// mapping heads are skolemised: a fresh blank node is derived
// deterministically from the rule and its frontier values, which mirrors
// the chase's labelled nulls. Because frontier variables are guarded by
// name/1 (skolem terms are blanks, never names), skolems cannot
// parameterise further skolems and the evaluation terminates — the same
// argument as Theorem 1.
//
// Evaluation is semi-naive: each iteration joins the per-predicate deltas
// against the full relations, with hash indexes on bound argument columns.
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/rdf"
)

// Predicate names used by the translation.
const (
	// PredTriple is the ternary triple relation t(s, p, o).
	PredTriple = "t"
	// PredName is the unary relation of identified resources (IRIs and
	// literals) — the rt relation of the paper's encoding.
	PredName = "name"
	// PredAnswer is the head predicate of the translated query rule.
	PredAnswer = "ans"
)

// Atom is a Datalog atom: predicate applied to variables and constants.
type Atom struct {
	Pred string
	Args []pattern.Elem
}

// NewAtom constructs an atom.
func NewAtom(pred string, args ...pattern.Elem) Atom { return Atom{Pred: pred, Args: args} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, e := range a.Args {
		parts[i] = e.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Vars returns the atom's variable names (with duplicates).
func (a Atom) vars() []string {
	var out []string
	for _, e := range a.Args {
		if e.IsVar() {
			out = append(out, e.Var())
		}
	}
	return out
}

// Rule is a single-head Datalog rule Head :- Body. Head variables that do
// not occur in the body must be declared in Skolems: they are materialised
// as skolem blank nodes parameterised by the rule's frontier variables.
type Rule struct {
	Head Atom
	Body []Atom
	// Skolems lists head variables to skolemise, in a fixed order.
	Skolems []string
	// SkolemKeyVars lists the body variables whose values parameterise the
	// skolem terms (the rule's frontier). Rules split from one mapping
	// assertion share the same label and key variables, so a shared
	// existential receives the same skolem blank in every head atom. Empty
	// means all bound variables.
	SkolemKeyVars []string
	// Label names the rule in diagnostics and skolem terms.
	Label string
}

// Validate checks the safety condition: every head variable occurs in the
// body or is declared as a skolem.
func (r Rule) Validate() error {
	body := make(map[string]bool)
	for _, a := range r.Body {
		for _, v := range a.vars() {
			body[v] = true
		}
	}
	sk := make(map[string]bool, len(r.Skolems))
	for _, v := range r.Skolems {
		if body[v] {
			return fmt.Errorf("datalog: rule %s: skolem variable %s occurs in the body", r.Label, v)
		}
		sk[v] = true
	}
	for _, v := range r.Head.vars() {
		if !body[v] && !sk[v] {
			return fmt.Errorf("datalog: rule %s: unsafe head variable %s", r.Label, v)
		}
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("datalog: rule %s: empty body", r.Label)
	}
	return nil
}

// String renders the rule.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	s := r.Head.String() + " :- " + strings.Join(parts, ", ")
	if len(r.Skolems) > 0 {
		s += "  [skolem: " + strings.Join(r.Skolems, ",") + "]"
	}
	if r.Label != "" {
		s = "[" + r.Label + "] " + s
	}
	return s
}

// Program is a set of rules.
type Program struct {
	Rules []Rule
}

// Validate checks every rule.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// relation stores the extension of one predicate with per-column hash
// indexes for bound-argument lookups.
type relation struct {
	rows []pattern.Tuple
	seen map[string]bool
	// index[col][valueKey] lists row indices with that value in col.
	index []map[string][]int
	arity int
}

func newRelation(arity int) *relation {
	idx := make([]map[string][]int, arity)
	for i := range idx {
		idx[i] = make(map[string][]int)
	}
	return &relation{seen: make(map[string]bool), index: idx, arity: arity}
}

func (r *relation) insert(t pattern.Tuple) bool {
	k := t.Key()
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	i := len(r.rows)
	r.rows = append(r.rows, t)
	for col, v := range t {
		vk := v.String()
		r.index[col][vk] = append(r.index[col][vk], i)
	}
	return true
}

// candidates returns row indices matching the bound positions of args under
// the binding, using the most selective column index available.
func (r *relation) candidates(args []pattern.Elem, mu pattern.Binding) []int {
	bestCol, bestLen := -1, 0
	for col, e := range args {
		var val rdf.Term
		switch {
		case !e.IsVar():
			val = e.Term()
		default:
			t, ok := mu[e.Var()]
			if !ok {
				continue
			}
			val = t
		}
		ids := r.index[col][val.String()]
		if bestCol == -1 || len(ids) < bestLen {
			bestCol, bestLen = col, len(ids)
		}
		if bestLen == 0 {
			return nil
		}
	}
	if bestCol == -1 {
		all := make([]int, len(r.rows))
		for i := range all {
			all[i] = i
		}
		return all
	}
	e := args[bestCol]
	var val rdf.Term
	if !e.IsVar() {
		val = e.Term()
	} else {
		val = mu[e.Var()]
	}
	return r.index[bestCol][val.String()]
}

// Store holds the materialised relations of an evaluation.
type Store struct {
	rels map[string]*relation
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{rels: make(map[string]*relation)} }

// Insert adds a fact, reporting whether it was new.
func (s *Store) Insert(pred string, t pattern.Tuple) bool {
	r, ok := s.rels[pred]
	if !ok {
		r = newRelation(len(t))
		s.rels[pred] = r
	}
	return r.insert(t)
}

// Facts returns the extension of a predicate as a tuple set.
func (s *Store) Facts(pred string) *pattern.TupleSet {
	out := pattern.NewTupleSet()
	if r, ok := s.rels[pred]; ok {
		for _, t := range r.rows {
			out.Add(t)
		}
	}
	return out
}

// Len returns the total number of facts.
func (s *Store) Len() int {
	n := 0
	for _, r := range s.rels {
		n += len(r.rows)
	}
	return n
}

// Stats describes an evaluation run.
type Stats struct {
	// Iterations is the number of semi-naive rounds until fixpoint.
	Iterations int
	// FactsDerived counts facts added beyond the EDB.
	FactsDerived int
	// SkolemsCreated counts skolem blank nodes minted.
	SkolemsCreated int
}

// Eval runs the program bottom-up over the EDB facts in store (mutating the
// store) until fixpoint, using semi-naive iteration.
func Eval(p *Program, store *Store) (Stats, error) {
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	var stats Stats
	skolems := make(map[string]rdf.Term)

	// Constants in rule heads (equivalence terms, mapping-constant IRIs)
	// are identified resources even when no stored triple mentions them:
	// copy rules can introduce them into derived triples, so they belong
	// in name/1. Skolems, by contrast, are blanks and never names.
	for _, rule := range p.Rules {
		for _, e := range rule.Head.Args {
			if !e.IsVar() && e.Term().IsName() {
				store.Insert(PredName, pattern.Tuple{e.Term()})
			}
		}
	}

	// delta initialised to everything present
	delta := make(map[string]map[string]bool) // pred -> tuple keys in delta
	for pred, r := range store.rels {
		m := make(map[string]bool, len(r.rows))
		for _, t := range r.rows {
			m[t.Key()] = true
		}
		delta[pred] = m
	}

	for {
		stats.Iterations++
		next := make(map[string]map[string]bool)
		derived := 0
		for _, rule := range p.Rules {
			// semi-naive: at least one body atom must be matched in the
			// delta; try each atom as the delta atom
			for di := range rule.Body {
				if len(delta[rule.Body[di].Pred]) == 0 {
					continue
				}
				for _, mu := range matchBody(store, rule.Body, di, delta) {
					fact, created, err := instantiateHead(rule, mu, skolems, &stats)
					if err != nil {
						return stats, err
					}
					_ = created
					if store.Insert(rule.Head.Pred, fact) {
						derived++
						stats.FactsDerived++
						m, ok := next[rule.Head.Pred]
						if !ok {
							m = make(map[string]bool)
							next[rule.Head.Pred] = m
						}
						m[fact.Key()] = true
					}
				}
			}
		}
		if derived == 0 {
			return stats, nil
		}
		delta = next
	}
}

// matchBody enumerates bindings of the body where atom deltaIdx matches a
// delta fact and the rest match the full store.
func matchBody(store *Store, body []Atom, deltaIdx int, delta map[string]map[string]bool) []pattern.Binding {
	// order atoms: delta atom first, the rest in given order
	order := make([]int, 0, len(body))
	order = append(order, deltaIdx)
	for i := range body {
		if i != deltaIdx {
			order = append(order, i)
		}
	}
	results := []pattern.Binding{{}}
	for pos, bi := range order {
		atom := body[bi]
		rel, ok := store.rels[atom.Pred]
		if !ok {
			return nil
		}
		var next []pattern.Binding
		for _, mu := range results {
			for _, ri := range rel.candidates(atom.Args, mu) {
				row := rel.rows[ri]
				if pos == 0 && !delta[atom.Pred][row.Key()] {
					continue // the designated atom must come from the delta
				}
				if ext, ok := unifyRow(atom.Args, row, mu); ok {
					next = append(next, ext)
				}
			}
		}
		results = next
		if len(results) == 0 {
			return nil
		}
	}
	return results
}

// unifyRow extends mu by matching args against a stored row.
func unifyRow(args []pattern.Elem, row pattern.Tuple, mu pattern.Binding) (pattern.Binding, bool) {
	out := mu
	cloned := false
	for i, e := range args {
		if !e.IsVar() {
			if e.Term() != row[i] {
				return nil, false
			}
			continue
		}
		v := e.Var()
		if cur, ok := out[v]; ok {
			if cur != row[i] {
				return nil, false
			}
			continue
		}
		if !cloned {
			out = mu.Clone()
			cloned = true
		}
		out[v] = row[i]
	}
	return out, true
}

// instantiateHead grounds the rule head under mu, minting skolem blanks for
// declared skolem variables (deterministic in the rule and frontier values).
func instantiateHead(rule Rule, mu pattern.Binding, skolems map[string]rdf.Term, stats *Stats) (pattern.Tuple, bool, error) {
	var skBinding pattern.Binding
	if len(rule.Skolems) > 0 {
		// skolem key: rule label + frontier values in sorted variable order
		frontier := rule.SkolemKeyVars
		if len(frontier) == 0 {
			frontier = make([]string, 0, len(mu))
			for v := range mu {
				frontier = append(frontier, v)
			}
			sort.Strings(frontier)
		}
		var key strings.Builder
		key.WriteString(rule.Label)
		for _, v := range frontier {
			key.WriteByte('|')
			key.WriteString(v)
			key.WriteByte('=')
			key.WriteString(mu[v].String())
		}
		skBinding = make(pattern.Binding, len(rule.Skolems))
		for _, v := range rule.Skolems {
			k := key.String() + "!" + v
			t, ok := skolems[k]
			if !ok {
				stats.SkolemsCreated++
				t = rdf.Blank(fmt.Sprintf("sk%d", stats.SkolemsCreated))
				skolems[k] = t
			}
			skBinding[v] = t
		}
	}
	out := make(pattern.Tuple, len(rule.Head.Args))
	for i, e := range rule.Head.Args {
		if !e.IsVar() {
			out[i] = e.Term()
			continue
		}
		if t, ok := mu[e.Var()]; ok {
			out[i] = t
			continue
		}
		if t, ok := skBinding[e.Var()]; ok {
			out[i] = t
			continue
		}
		return nil, false, fmt.Errorf("datalog: rule %s: unbound head variable %s", rule.Label, e.Var())
	}
	return out, true, nil
}

// FromSystem translates an RPS into a Datalog program over t/3 and name/1:
// six copy rules per equivalence mapping and one rule per head atom of each
// graph mapping assertion, with frontier variables guarded by name/1 and
// head existentials skolemised. The program is independent of the data —
// the "Datalog rewriting" of the system.
func FromSystem(sys *core.System) *Program {
	p := &Program{}
	y, z := pattern.V("y"), pattern.V("z")
	for i, e := range sys.E {
		c, cp := pattern.C(e.C), pattern.C(e.CPrime)
		mk := func(h, b Atom, dir string) Rule {
			return Rule{Head: h, Body: []Atom{b}, Label: fmt.Sprintf("eq%d-%s", i, dir)}
		}
		p.Rules = append(p.Rules,
			mk(NewAtom(PredTriple, cp, y, z), NewAtom(PredTriple, c, y, z), "s-fw"),
			mk(NewAtom(PredTriple, c, y, z), NewAtom(PredTriple, cp, y, z), "s-bw"),
			mk(NewAtom(PredTriple, y, cp, z), NewAtom(PredTriple, y, c, z), "p-fw"),
			mk(NewAtom(PredTriple, y, c, z), NewAtom(PredTriple, y, cp, z), "p-bw"),
			mk(NewAtom(PredTriple, y, z, cp), NewAtom(PredTriple, y, z, c), "o-fw"),
			mk(NewAtom(PredTriple, y, z, c), NewAtom(PredTriple, y, z, cp), "o-bw"),
		)
	}
	for i, m := range sys.G {
		p.Rules = append(p.Rules, gmaRules(m, i)...)
	}
	return p
}

// gmaRules translates one graph mapping assertion into Datalog rules.
func gmaRules(m core.GraphMappingAssertion, idx int) []Rule {
	from := m.From.Rename("b_")
	// body: t-atoms of Q plus name guards on the free variables
	var body []Atom
	for _, tp := range from.GP {
		body = append(body, NewAtom(PredTriple, tp.S, tp.P, tp.O))
	}
	for _, f := range from.Free {
		body = append(body, NewAtom(PredName, pattern.V(f)))
	}
	// head: identify Q' free vars with Q's positionally; rename the rest
	headFree := make(map[string]string, len(m.To.Free))
	for i, f := range m.To.Free {
		headFree[f] = from.Free[i]
	}
	exist := make(map[string]bool)
	ren := func(e pattern.Elem) pattern.Elem {
		if !e.IsVar() {
			return e
		}
		if mapped, ok := headFree[e.Var()]; ok {
			return pattern.V(mapped)
		}
		exist["h_"+e.Var()] = true
		return pattern.V("h_" + e.Var())
	}
	label := m.Label
	if label == "" {
		label = fmt.Sprintf("gma%d", idx)
	}
	var skolems []string
	headAtoms := make([]Atom, 0, len(m.To.GP))
	for _, tp := range m.To.GP {
		headAtoms = append(headAtoms, NewAtom(PredTriple, ren(tp.S), ren(tp.P), ren(tp.O)))
	}
	for v := range exist {
		skolems = append(skolems, v)
	}
	sort.Strings(skolems)
	rules := make([]Rule, 0, len(headAtoms))
	for _, h := range headAtoms {
		// each head atom becomes one rule; they share the same skolem
		// binding because the skolem key is (label, frontier values) and
		// both are shared across the split
		var sk []string
		for _, v := range skolems {
			for _, hv := range h.vars() {
				if hv == v {
					sk = append(sk, v)
					break
				}
			}
		}
		rules = append(rules, Rule{
			Head: h, Body: body, Skolems: sk,
			SkolemKeyVars: append([]string(nil), from.Free...),
			Label:         label, // shared across the split so skolems align
		})
	}
	return rules
}

// EDBFromGraph loads an RDF graph as t/3 and name/1 facts.
func EDBFromGraph(g *rdf.Graph) *Store {
	store := NewStore()
	g.ForEach(func(t rdf.Triple) bool {
		store.Insert(PredTriple, pattern.Tuple{t.S, t.P, t.O})
		for _, x := range t.Terms() {
			if x.IsName() {
				store.Insert(PredName, pattern.Tuple{x})
			}
		}
		return true
	})
	return store
}

// QueryRules translates a graph pattern query into an ans/n rule with name
// guards on the free variables (certain-answer semantics).
func QueryRules(q pattern.Query) Rule {
	var body []Atom
	for _, tp := range q.GP {
		body = append(body, NewAtom(PredTriple, tp.S, tp.P, tp.O))
	}
	args := make([]pattern.Elem, len(q.Free))
	for i, f := range q.Free {
		args[i] = pattern.V(f)
		body = append(body, NewAtom(PredName, pattern.V(f)))
	}
	return Rule{Head: NewAtom(PredAnswer, args...), Body: body, Label: "query"}
}

// CertainAnswers computes ans(q, P, D) by Datalog evaluation: translate the
// system and query, load the stored database, run to fixpoint, and read the
// answer relation. Equivalent to the chase (both are skolem-free on names),
// but the program — unlike a UCQ — exists for every RPS, including the
// transitive-closure mappings of Proposition 3.
func CertainAnswers(sys *core.System, q pattern.Query) (*pattern.TupleSet, Stats, error) {
	p := FromSystem(sys)
	p.Rules = append(p.Rules, QueryRules(q))
	store := EDBFromGraph(sys.StoredDatabase())
	stats, err := Eval(p, store)
	if err != nil {
		return nil, stats, err
	}
	return store.Facts(PredAnswer), stats, nil
}

// SkolemChaseGraph exposes the derived t/3 relation as an RDF graph — the
// skolem-chase counterpart of the universal solution, useful for
// inspection and for answering further queries without re-evaluation.
func SkolemChaseGraph(store *Store) *rdf.Graph {
	g := rdf.NewGraph()
	if r, ok := store.rels[PredTriple]; ok {
		for _, t := range r.rows {
			if len(t) == 3 {
				g.Add(rdf.Triple{S: t[0], P: t[1], O: t[2]})
			}
		}
	}
	return g
}

// BooleanQuery answers a boolean graph pattern query over an evaluated
// store (ans/0 non-empty).
func BooleanQuery(store *Store) bool {
	return store.Facts(PredAnswer).Len() > 0
}
