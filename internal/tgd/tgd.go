// Package tgd implements tuple-generating dependencies over a relational
// alphabet, together with the syntactic classification tests used in
// Section 4 of the paper: linearity, guardedness, weak acyclicity, the
// variable-marking stickiness test of Definition 4, and a sticky-join
// approximation. It also fixes the data-exchange alphabet of Section 3
// (ts/rs source relations and tt/rt target relations) used to encode RDF
// Peer Systems as relational data exchange settings.
package tgd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pattern"
	"repro/internal/rdf"
)

// Relation symbols of the data exchange setting of Section 3. TS/TT are the
// ternary triple relations of the stored and peer-to-peer databases; RS/RT
// are the unary relations of identified resources.
const (
	PredTS = "ts"
	PredTT = "tt"
	PredRS = "rs"
	PredRT = "rt"
)

// Atom is a relational atom: a predicate applied to arguments, each of which
// is a variable or a constant RDF term (pattern.Elem).
type Atom struct {
	Pred string
	Args []pattern.Elem
}

// NewAtom constructs an atom.
func NewAtom(pred string, args ...pattern.Elem) Atom {
	return Atom{Pred: pred, Args: args}
}

// TTAtom returns a tt/3 atom for the triple pattern positions s, p, o.
func TTAtom(s, p, o pattern.Elem) Atom { return NewAtom(PredTT, s, p, o) }

// RTAtom returns an rt/1 atom for x.
func RTAtom(x pattern.Elem) Atom { return NewAtom(PredRT, x) }

// Vars returns the variable names of the atom, sorted and de-duplicated.
func (a Atom) Vars() []string {
	set := make(map[string]struct{}, len(a.Args))
	for _, e := range a.Args {
		if e.IsVar() {
			set[e.Var()] = struct{}{}
		}
	}
	return sortedKeys(set)
}

// HasVar reports whether the variable occurs in the atom.
func (a Atom) HasVar(v string) bool {
	for _, e := range a.Args {
		if e.IsVar() && e.Var() == v {
			return true
		}
	}
	return false
}

// String renders the atom, e.g. "tt(?x, <A>, ?z)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, e := range a.Args {
		parts[i] = e.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Apply substitutes bound variables of µ into the atom.
func (a Atom) Apply(mu pattern.Binding) Atom {
	args := make([]pattern.Elem, len(a.Args))
	for i, e := range a.Args {
		if e.IsVar() {
			if t, ok := mu[e.Var()]; ok {
				args[i] = pattern.C(t)
				continue
			}
		}
		args[i] = e
	}
	return Atom{Pred: a.Pred, Args: args}
}

// TGD is a tuple-generating dependency ∀x φ(x) → ∃z ψ(x, z): Body is φ,
// Head is ψ, and head variables not occurring in the body are existentially
// quantified.
type TGD struct {
	Body []Atom
	Head []Atom
	// Label is an optional human-readable name used in diagnostics.
	Label string
}

// New constructs a TGD.
func New(body, head []Atom) TGD { return TGD{Body: body, Head: head} }

// BodyVars returns the universally quantified variables, sorted.
func (t TGD) BodyVars() []string {
	set := make(map[string]struct{})
	for _, a := range t.Body {
		for _, v := range a.Vars() {
			set[v] = struct{}{}
		}
	}
	return sortedKeys(set)
}

// HeadVars returns all variables of the head, sorted.
func (t TGD) HeadVars() []string {
	set := make(map[string]struct{})
	for _, a := range t.Head {
		for _, v := range a.Vars() {
			set[v] = struct{}{}
		}
	}
	return sortedKeys(set)
}

// ExistentialVars returns head variables that do not occur in the body.
func (t TGD) ExistentialVars() []string {
	body := make(map[string]struct{})
	for _, v := range t.BodyVars() {
		body[v] = struct{}{}
	}
	set := make(map[string]struct{})
	for _, a := range t.Head {
		for _, v := range a.Vars() {
			if _, ok := body[v]; !ok {
				set[v] = struct{}{}
			}
		}
	}
	return sortedKeys(set)
}

// FrontierVars returns body variables that also occur in the head.
func (t TGD) FrontierVars() []string {
	head := make(map[string]struct{})
	for _, v := range t.HeadVars() {
		head[v] = struct{}{}
	}
	var out []string
	for _, v := range t.BodyVars() {
		if _, ok := head[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// String renders the TGD in rule syntax.
func (t TGD) String() string {
	b := make([]string, len(t.Body))
	for i, a := range t.Body {
		b[i] = a.String()
	}
	h := make([]string, len(t.Head))
	for i, a := range t.Head {
		h[i] = a.String()
	}
	s := strings.Join(b, " ∧ ") + " → " + strings.Join(h, " ∧ ")
	if t.Label != "" {
		s = "[" + t.Label + "] " + s
	}
	return s
}

// Position identifies an argument slot r[i] of a predicate.
type Position struct {
	Pred string
	Idx  int
}

// String renders the position as "r[i]".
func (p Position) String() string { return fmt.Sprintf("%s[%d]", p.Pred, p.Idx) }

// IsLinear reports whether every TGD has exactly one body atom.
func IsLinear(sigma []TGD) bool {
	for _, t := range sigma {
		if len(t.Body) != 1 {
			return false
		}
	}
	return true
}

// IsGuarded reports whether every TGD has a body atom containing all of the
// TGD's universally quantified variables.
func IsGuarded(sigma []TGD) bool {
	for _, t := range sigma {
		vars := t.BodyVars()
		guarded := false
		for _, a := range t.Body {
			all := true
			for _, v := range vars {
				if !a.HasVar(v) {
					all = false
					break
				}
			}
			if all {
				guarded = true
				break
			}
		}
		if !guarded && len(t.Body) > 0 {
			return false
		}
	}
	return true
}

// Marking is the result of the Definition 4 variable-marking procedure.
type Marking struct {
	// MarkedVars[i] is the set of marked body variables of sigma[i].
	MarkedVars []map[string]bool
	// MarkedPositions is the set of positions at which a marked variable
	// occurs in some TGD body (the propagation frontier).
	MarkedPositions map[Position]bool
	// Rounds is the number of fixpoint iterations performed.
	Rounds int
}

// Mark runs the variable-marking procedure of Definition 4 on sigma.
//
// Initial step: for each TGD σ and each variable V in body(σ), if some head
// atom of σ does not contain V, every occurrence of V in body(σ) is marked.
// Propagation step (to fixpoint): if a marked variable occurs in some body
// at position π, then for every TGD σ′, every body variable of σ′ that
// occurs in head(σ′) at position π becomes marked.
func Mark(sigma []TGD) *Marking {
	m := &Marking{
		MarkedVars:      make([]map[string]bool, len(sigma)),
		MarkedPositions: make(map[Position]bool),
	}
	for i := range sigma {
		m.MarkedVars[i] = make(map[string]bool)
	}
	// initial marking
	for i, t := range sigma {
		for _, v := range t.BodyVars() {
			missing := false
			for _, h := range t.Head {
				if !h.HasVar(v) {
					missing = true
					break
				}
			}
			if len(t.Head) == 0 {
				missing = true
			}
			if missing {
				m.MarkedVars[i][v] = true
			}
		}
	}
	m.recomputePositions(sigma)
	// propagation to fixpoint
	for {
		m.Rounds++
		changed := false
		for i, t := range sigma {
			for _, h := range t.Head {
				for idx, e := range h.Args {
					if !e.IsVar() {
						continue
					}
					v := e.Var()
					if m.MarkedVars[i][v] {
						continue
					}
					if !isBodyVar(t, v) {
						continue // existential variables are never marked
					}
					if m.MarkedPositions[Position{Pred: h.Pred, Idx: idx}] {
						m.MarkedVars[i][v] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			return m
		}
		m.recomputePositions(sigma)
	}
}

func (m *Marking) recomputePositions(sigma []TGD) {
	for i, t := range sigma {
		for _, a := range t.Body {
			for idx, e := range a.Args {
				if e.IsVar() && m.MarkedVars[i][e.Var()] {
					m.MarkedPositions[Position{Pred: a.Pred, Idx: idx}] = true
				}
			}
		}
	}
}

func isBodyVar(t TGD, v string) bool {
	for _, a := range t.Body {
		if a.HasVar(v) {
			return true
		}
	}
	return false
}

// bodyOccurrences counts total occurrences of v across the body atoms of t,
// counting repeats within a single atom.
func bodyOccurrences(t TGD, v string) int {
	n := 0
	for _, a := range t.Body {
		for _, e := range a.Args {
			if e.IsVar() && e.Var() == v {
				n++
			}
		}
	}
	return n
}

// IsSticky runs the Definition 4 test: sigma is sticky iff no TGD has a
// marked variable occurring more than once in its body.
func IsSticky(sigma []TGD) bool {
	_, offender := StickyWitness(sigma)
	return offender == -1
}

// StickyWitness returns the marking together with the index of the first
// TGD violating stickiness (or -1 if sigma is sticky).
func StickyWitness(sigma []TGD) (*Marking, int) {
	m := Mark(sigma)
	for i, t := range sigma {
		for v := range m.MarkedVars[i] {
			if bodyOccurrences(t, v) > 1 {
				return m, i
			}
		}
	}
	return m, -1
}

// IsStickyJoin reports whether sigma is accepted by this library's
// sticky-join test. Sticky-join sets (Calì, Gottlob, Pieris 2010) generalise
// both sticky and linear sets; the full definition involves query expansion,
// so this implementation uses a sound approximation: sigma passes if it is
// sticky, or linear, or if every marked variable occurring more than once in
// a body is confined to a single body atom (an intra-atom join, which the
// expansion-based definition tolerates). A false result therefore does not
// prove sigma is outside the sticky-join class, but a true result guarantees
// the rewriting engine terminates.
func IsStickyJoin(sigma []TGD) bool {
	if IsLinear(sigma) || IsSticky(sigma) {
		return true
	}
	m := Mark(sigma)
	for i, t := range sigma {
		for v := range m.MarkedVars[i] {
			if bodyOccurrences(t, v) <= 1 {
				continue
			}
			atomsWith := 0
			for _, a := range t.Body {
				if a.HasVar(v) {
					atomsWith++
				}
			}
			if atomsWith > 1 {
				return false
			}
		}
	}
	return true
}

// IsWeaklyAcyclic reports whether sigma is weakly acyclic: the position
// dependency graph (normal edges from body positions of a frontier variable
// to its head positions, special edges from body positions of a frontier
// variable to positions of existential variables in the head) has no cycle
// through a special edge.
func IsWeaklyAcyclic(sigma []TGD) bool {
	type edge struct {
		to      Position
		special bool
	}
	adj := make(map[Position][]edge)
	addEdge := func(from, to Position, special bool) {
		adj[from] = append(adj[from], edge{to: to, special: special})
	}
	for _, t := range sigma {
		exist := make(map[string]bool)
		for _, v := range t.ExistentialVars() {
			exist[v] = true
		}
		for _, v := range t.BodyVars() {
			var fromPositions []Position
			for _, a := range t.Body {
				for idx, e := range a.Args {
					if e.IsVar() && e.Var() == v {
						fromPositions = append(fromPositions, Position{a.Pred, idx})
					}
				}
			}
			for _, h := range t.Head {
				for idx, e := range h.Args {
					if !e.IsVar() {
						continue
					}
					hv := e.Var()
					to := Position{h.Pred, idx}
					if hv == v {
						for _, from := range fromPositions {
							addEdge(from, to, false)
						}
					} else if exist[hv] {
						for _, from := range fromPositions {
							addEdge(from, to, true)
						}
					}
				}
			}
		}
	}
	// detect a cycle containing a special edge: for each special edge u->v,
	// check whether v reaches u.
	reaches := func(from, target Position) bool {
		seen := map[Position]bool{from: true}
		stack := []Position{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == target {
				return true
			}
			for _, e := range adj[cur] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		return false
	}
	for from, edges := range adj {
		for _, e := range edges {
			if e.special && reaches(e.to, from) {
				return false
			}
		}
	}
	return true
}

// Class summarises the classification of a dependency set.
type Class struct {
	Linear        bool
	Guarded       bool
	Sticky        bool
	StickyJoin    bool
	WeaklyAcyclic bool
}

// Classify runs every classification test on sigma.
func Classify(sigma []TGD) Class {
	return Class{
		Linear:        IsLinear(sigma),
		Guarded:       IsGuarded(sigma),
		Sticky:        IsSticky(sigma),
		StickyJoin:    IsStickyJoin(sigma),
		WeaklyAcyclic: IsWeaklyAcyclic(sigma),
	}
}

// FORewritable reports whether the classification guarantees first-order
// rewritability via TGD-rewrite (Proposition 2: linear, sticky or
// sticky-join suffices).
func (c Class) FORewritable() bool { return c.Linear || c.Sticky || c.StickyJoin }

// String renders the classification compactly.
func (c Class) String() string {
	flag := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	return fmt.Sprintf("linear=%s guarded=%s sticky=%s sticky-join=%s weakly-acyclic=%s",
		flag(c.Linear), flag(c.Guarded), flag(c.Sticky), flag(c.StickyJoin), flag(c.WeaklyAcyclic))
}

// V is a shorthand for a variable argument.
func V(name string) pattern.Elem { return pattern.V(name) }

// C is a shorthand for a constant argument.
func C(t rdf.Term) pattern.Elem { return pattern.C(t) }

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
