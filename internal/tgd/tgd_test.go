package tgd

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/rdf"
)

var (
	iriA        = rdf.IRI("http://e/A")
	iriB        = rdf.IRI("http://e/B")
	iriCc       = rdf.IRI("http://e/C")
	starring    = rdf.IRI("http://e/starring")
	artist      = rdf.IRI("http://e/artist")
	actor       = rdf.IRI("http://e/actor")
	constC      = rdf.IRI("http://e/c")
	constCPrime = rdf.IRI("http://e/cPrime")
)

// equivalenceTGDs returns the six dependencies for c ≡ₑ c′ (Section 3).
func equivalenceTGDs() []TGD {
	mk := func(body, head Atom) TGD { return TGD{Body: []Atom{body}, Head: []Atom{head}} }
	return []TGD{
		mk(TTAtom(C(constC), V("y"), V("z")), TTAtom(C(constCPrime), V("y"), V("z"))),
		mk(TTAtom(C(constCPrime), V("y"), V("z")), TTAtom(C(constC), V("y"), V("z"))),
		mk(TTAtom(V("x"), C(constC), V("z")), TTAtom(V("x"), C(constCPrime), V("z"))),
		mk(TTAtom(V("x"), C(constCPrime), V("z")), TTAtom(V("x"), C(constC), V("z"))),
		mk(TTAtom(V("x"), V("y"), C(constC)), TTAtom(V("x"), V("y"), C(constCPrime))),
		mk(TTAtom(V("x"), V("y"), C(constCPrime)), TTAtom(V("x"), V("y"), C(constC))),
	}
}

// pathToEdgeGMA is the paper's Section 4 example of a non-sticky graph
// mapping assertion: tt(x,A,z) ∧ tt(z,B,y) ∧ rt(x) ∧ rt(y) → tt(x,C,y).
func pathToEdgeGMA() TGD {
	return TGD{
		Body: []Atom{
			TTAtom(V("x"), C(iriA), V("z")),
			TTAtom(V("z"), C(iriB), V("y")),
			RTAtom(V("x")),
			RTAtom(V("y")),
		},
		Head: []Atom{TTAtom(V("x"), C(iriCc), V("y"))},
	}
}

// transitiveGMA is the Proposition 3 transitive-closure mapping:
// tt(x,A,z) ∧ tt(z,A,y) ∧ rt(x) ∧ rt(y) → tt(x,A,y).
func transitiveGMA() TGD {
	return TGD{
		Body: []Atom{
			TTAtom(V("x"), C(iriA), V("z")),
			TTAtom(V("z"), C(iriA), V("y")),
			RTAtom(V("x")),
			RTAtom(V("y")),
		},
		Head: []Atom{TTAtom(V("x"), C(iriA), V("y"))},
	}
}

// edgeToPathGMA is Example 2's Q2 ⤳ Q1 as a TGD:
// tt(x,actor,y) ∧ rt(x) ∧ rt(y) → ∃z tt(x,starring,z) ∧ tt(z,artist,y).
func edgeToPathGMA() TGD {
	return TGD{
		Body: []Atom{
			TTAtom(V("x"), C(actor), V("y")),
			RTAtom(V("x")),
			RTAtom(V("y")),
		},
		Head: []Atom{
			TTAtom(V("x"), C(starring), V("z")),
			TTAtom(V("z"), C(artist), V("y")),
		},
	}
}

func TestTGDVarsAccounting(t *testing.T) {
	g := edgeToPathGMA()
	if got := g.BodyVars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("BodyVars = %v", got)
	}
	if got := g.HeadVars(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("HeadVars = %v", got)
	}
	if got := g.ExistentialVars(); !reflect.DeepEqual(got, []string{"z"}) {
		t.Errorf("ExistentialVars = %v", got)
	}
	if got := g.FrontierVars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("FrontierVars = %v", got)
	}
}

func TestAtomHelpers(t *testing.T) {
	a := TTAtom(V("x"), C(iriA), V("x"))
	if got := a.Vars(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("Vars dedup = %v", got)
	}
	if !a.HasVar("x") || a.HasVar("y") {
		t.Error("HasVar wrong")
	}
	b := a.Apply(pattern.Binding{"x": rdf.IRI("http://e/v")})
	if b.Args[0].IsVar() || b.Args[2].IsVar() {
		t.Errorf("Apply did not substitute: %v", b)
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal wrong")
	}
	if !strings.Contains(a.String(), "tt(?x") {
		t.Errorf("String = %q", a.String())
	}
}

// Paper claim (Section 4): equivalence-mapping TGDs are linear and sticky.
func TestEquivalenceMappingsAreLinearAndSticky(t *testing.T) {
	sigma := equivalenceTGDs()
	c := Classify(sigma)
	if !c.Linear {
		t.Error("equivalence TGDs must be linear")
	}
	if !c.Sticky {
		t.Error("equivalence TGDs must be sticky")
	}
	if !c.FORewritable() {
		t.Error("equivalence TGDs must be FO-rewritable")
	}
}

// Paper claim (Section 4): the path-to-edge GMA violates stickiness because
// the marking marks z, which occurs twice in the body.
func TestPathToEdgeGMAIsNotSticky(t *testing.T) {
	sigma := []TGD{pathToEdgeGMA()}
	m, offender := StickyWitness(sigma)
	if offender != 0 {
		t.Fatalf("expected TGD 0 to violate stickiness, got %d", offender)
	}
	if !m.MarkedVars[0]["z"] {
		t.Error("z must be marked (absent from the head)")
	}
	if IsSticky(sigma) {
		t.Error("IsSticky must be false")
	}
	if IsLinear(sigma) {
		t.Error("multi-atom body is not linear")
	}
	if IsGuarded(sigma) {
		t.Error("no body atom contains x, y and z together")
	}
}

// Paper claim (Section 4 / Prop 3): the transitive-closure GMA is neither
// sticky nor linear.
func TestTransitiveGMAClassification(t *testing.T) {
	sigma := []TGD{transitiveGMA()}
	c := Classify(sigma)
	if c.Sticky || c.Linear {
		t.Errorf("transitive GMA wrongly classified: %v", c)
	}
	// no existential variables: weak acyclicity holds (chase terminates),
	// which is consistent with Theorem 1's PTIME result
	if !c.WeaklyAcyclic {
		t.Error("rule without existentials must be weakly acyclic")
	}
}

// The Example 2 mapping Q2 ⤳ Q1 has an existential z appearing at subject
// and object tt positions, creating a special self-loop: not weakly acyclic.
func TestEdgeToPathGMANotWeaklyAcyclic(t *testing.T) {
	sigma := []TGD{edgeToPathGMA()}
	if IsWeaklyAcyclic(sigma) {
		t.Error("edge-to-path GMA must not be weakly acyclic (special self-loop on tt positions)")
	}
	// it is guarded: tt(x,actor,y) contains all body variables
	if !IsGuarded(sigma) {
		t.Error("tt(x,actor,y) guards the body")
	}
	// and linear? no: body has three atoms
	if IsLinear(sigma) {
		t.Error("three body atoms are not linear")
	}
}

// Marking on the abstract transitivity example from Section 4:
// A(x,z) ∧ A(z,y) → A(x,y). After propagation all of x, y, z are marked and
// z occurs twice: not sticky.
func TestMarkingPropagation(t *testing.T) {
	a := func(args ...pattern.Elem) Atom { return NewAtom("A", args...) }
	sigma := []TGD{{
		Body: []Atom{a(V("x"), V("z")), a(V("z"), V("y"))},
		Head: []Atom{a(V("x"), V("y"))},
	}}
	m := Mark(sigma)
	for _, v := range []string{"x", "y", "z"} {
		if !m.MarkedVars[0][v] {
			t.Errorf("variable %s should be marked after propagation", v)
		}
	}
	if !m.MarkedPositions[Position{"A", 0}] || !m.MarkedPositions[Position{"A", 1}] {
		t.Errorf("both A positions should be marked: %v", m.MarkedPositions)
	}
	if IsSticky(sigma) {
		t.Error("transitivity is not sticky")
	}
}

// Classic sticky example: R(x,y) → ∃z R(y,z) is linear and sticky even
// though x is marked, because x occurs only once.
func TestLinearExistentialIsSticky(t *testing.T) {
	r := func(args ...pattern.Elem) Atom { return NewAtom("R", args...) }
	sigma := []TGD{{
		Body: []Atom{r(V("x"), V("y"))},
		Head: []Atom{r(V("y"), V("z"))},
	}}
	c := Classify(sigma)
	if !c.Linear || !c.Sticky || !c.StickyJoin {
		t.Errorf("classification = %v", c)
	}
	// but it is not weakly acyclic: R[1] --special--> R[1] via z after y
	// feeds R[0]: R[0] -> ... check: y at body R[1] -> head R[0] normal;
	// z existential at head R[1]: special edges from x,y positions.
	if c.WeaklyAcyclic {
		t.Error("R(x,y) -> ∃z R(y,z) must not be weakly acyclic")
	}
}

// Cartesian-product rule: S(x) ∧ T(y) → U(x,y) has no marked variables and
// is sticky despite the join-free two-atom body.
func TestProductRuleSticky(t *testing.T) {
	sigma := []TGD{{
		Body: []Atom{NewAtom("S", V("x")), NewAtom("T", V("y"))},
		Head: []Atom{NewAtom("U", V("x"), V("y"))},
	}}
	if !IsSticky(sigma) {
		t.Error("product rule should be sticky (no marked variable repeats)")
	}
	if IsLinear(sigma) || IsGuarded(sigma) {
		t.Error("product rule is neither linear nor guarded")
	}
}

// Cross-TGD propagation: marking must flow through head positions of other
// TGDs in the set.
func TestMarkingCrossTGDPropagation(t *testing.T) {
	r := func(args ...pattern.Elem) Atom { return NewAtom("R", args...) }
	s := func(args ...pattern.Elem) Atom { return NewAtom("S", args...) }
	sigma := []TGD{
		// σ1: R(x,y) → S(x): y marked; y occurs at R[1]
		{Body: []Atom{r(V("x"), V("y"))}, Head: []Atom{s(V("x"))}},
		// σ2: S(u) ∧ S(v) → R(u,v): u,v appear in head at R[0], R[1].
		// R[1] is marked by σ1, so v becomes marked; v occurs once — still
		// sticky overall.
		{Body: []Atom{s(V("u")), s(V("v"))}, Head: []Atom{r(V("u"), V("v"))}},
	}
	m := Mark(sigma)
	if !m.MarkedVars[0]["y"] {
		t.Error("y should be marked in σ1")
	}
	if !m.MarkedVars[1]["v"] {
		t.Error("v should be marked in σ2 via propagation from R[1]")
	}
	// the cascade continues: v marked ⇒ S[0] marked ⇒ x marked in σ1 ⇒
	// R[0] marked ⇒ u marked in σ2
	if !m.MarkedVars[0]["x"] {
		t.Error("x should be marked in σ1 via S[0]")
	}
	if !m.MarkedVars[1]["u"] {
		t.Error("u should be marked in σ2 via R[0]")
	}
	if !IsSticky(sigma) {
		t.Error("set should be sticky: no marked variable repeats in a body")
	}
	// Now make v occur twice in σ2's body: sticky breaks.
	sigma2 := []TGD{
		sigma[0],
		{Body: []Atom{s(V("v")), s(V("v"))}, Head: []Atom{r(V("u"), V("v"))}},
	}
	// u appears in head but not body: existential; v marked via R[1], twice
	// in body -> not sticky.
	if IsSticky(sigma2) {
		t.Error("set with repeated marked v should not be sticky")
	}
}

func TestStickyJoinApproximation(t *testing.T) {
	// linear sets pass trivially
	if !IsStickyJoin(equivalenceTGDs()) {
		t.Error("linear sets are sticky-join")
	}
	// intra-atom repeated marked variable passes the relaxation:
	// R(x,x,y) → S(y)  (x marked, repeated, but within one atom)
	sigma := []TGD{{
		Body: []Atom{NewAtom("R", V("x"), V("x"), V("y")), NewAtom("T", V("w"))},
		Head: []Atom{NewAtom("S", V("y"))},
	}}
	if IsSticky(sigma) {
		t.Error("repeated marked x is not sticky")
	}
	if !IsStickyJoin(sigma) {
		t.Error("intra-atom join should pass the sticky-join approximation")
	}
	// cross-atom marked join fails
	if IsStickyJoin([]TGD{transitiveGMA()}) {
		t.Error("transitive closure must fail sticky-join")
	}
}

func TestWeaklyAcyclicCopyRules(t *testing.T) {
	// source-to-target copy rules of Section 3 are weakly acyclic
	sigma := []TGD{
		{Body: []Atom{NewAtom(PredTS, V("x"), V("y"), V("z"))}, Head: []Atom{TTAtom(V("x"), V("y"), V("z"))}},
		{Body: []Atom{NewAtom(PredRS, V("x"))}, Head: []Atom{RTAtom(V("x"))}},
	}
	if !IsWeaklyAcyclic(sigma) {
		t.Error("copy rules must be weakly acyclic")
	}
	if !IsSticky(sigma) || !IsLinear(sigma) {
		t.Error("copy rules are linear and sticky")
	}
}

func TestClassifyStringAndFORewritable(t *testing.T) {
	c := Classify(equivalenceTGDs())
	s := c.String()
	if !strings.Contains(s, "linear=yes") || !strings.Contains(s, "sticky=yes") {
		t.Errorf("String = %q", s)
	}
	bad := Classify([]TGD{transitiveGMA()})
	if bad.FORewritable() {
		t.Error("transitive closure must not be certified FO-rewritable")
	}
}

func TestTGDString(t *testing.T) {
	g := pathToEdgeGMA()
	g.Label = "gma1"
	s := g.String()
	if !strings.Contains(s, "→") || !strings.Contains(s, "[gma1]") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(Position{"tt", 2}.String(), "tt[2]") {
		t.Error("Position.String wrong")
	}
}

// Property-style: marking is monotone — adding a TGD can only grow the set
// of marked (tgd, var) pairs for the original TGDs... not in general (it is
// monotone in positions). We check the weaker invariant that re-running Mark
// is deterministic and idempotent.
func TestMarkDeterministic(t *testing.T) {
	sigma := []TGD{pathToEdgeGMA(), edgeToPathGMA(), transitiveGMA()}
	m1 := Mark(sigma)
	m2 := Mark(sigma)
	if !reflect.DeepEqual(m1.MarkedVars, m2.MarkedVars) {
		t.Error("marking not deterministic")
	}
	if !reflect.DeepEqual(m1.MarkedPositions, m2.MarkedPositions) {
		t.Error("marked positions not deterministic")
	}
}
