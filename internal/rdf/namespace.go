package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Namespaces maps prefixes to namespace IRIs, supporting CURIE expansion
// ("DB1:Spiderman" -> full IRI) and shortening for display. The zero value
// is not usable; construct with NewNamespaces.
type Namespaces struct {
	byPrefix map[string]string
}

// NewNamespaces returns an empty prefix table.
func NewNamespaces() *Namespaces {
	return &Namespaces{byPrefix: make(map[string]string)}
}

// CommonNamespaces returns a table preloaded with the prefixes used by the
// paper's examples (DB1, DB2, DB3, foaf, owl, rdf, xsd) plus an empty
// default prefix for example.org.
func CommonNamespaces() *Namespaces {
	ns := NewNamespaces()
	ns.Bind("", "http://example.org/")
	ns.Bind("DB1", "http://db1.example.org/")
	ns.Bind("DB2", "http://db2.example.org/")
	ns.Bind("DB3", "http://db3.example.org/")
	ns.Bind("foaf", "http://xmlns.com/foaf/0.1/")
	ns.Bind("owl", "http://www.w3.org/2002/07/owl#")
	ns.Bind("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#")
	ns.Bind("rdfs", "http://www.w3.org/2000/01/rdf-schema#")
	ns.Bind("xsd", "http://www.w3.org/2001/XMLSchema#")
	return ns
}

// Bind associates prefix with the namespace IRI ns, replacing any previous
// binding.
func (n *Namespaces) Bind(prefix, ns string) { n.byPrefix[prefix] = ns }

// Lookup returns the namespace bound to prefix.
func (n *Namespaces) Lookup(prefix string) (string, bool) {
	ns, ok := n.byPrefix[prefix]
	return ns, ok
}

// Expand resolves a prefixed name ("foaf:age") to a full IRI string. If the
// input has no colon, or the prefix is unbound, an error is returned. Inputs
// already shaped like absolute IRIs (containing "://" or starting with
// "urn:") are returned unchanged.
func (n *Namespaces) Expand(curie string) (string, error) {
	if strings.Contains(curie, "://") || strings.HasPrefix(curie, "urn:") {
		return curie, nil
	}
	i := strings.IndexByte(curie, ':')
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", curie)
	}
	prefix, local := curie[:i], curie[i+1:]
	ns, ok := n.byPrefix[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unbound prefix %q in %q", prefix, curie)
	}
	return ns + local, nil
}

// MustExpand is Expand but panics on error; intended for tests and examples
// with statically known prefixes.
func (n *Namespaces) MustExpand(curie string) string {
	s, err := n.Expand(curie)
	if err != nil {
		panic(err)
	}
	return s
}

// MustIRI expands a prefixed name and returns it as an IRI term, panicking
// on unbound prefixes. Intended for tests and examples.
func (n *Namespaces) MustIRI(curie string) Term { return IRI(n.MustExpand(curie)) }

// Shorten rewrites a full IRI to a prefixed name using the longest matching
// namespace, or returns the input unchanged if no namespace matches.
func (n *Namespaces) Shorten(iri string) string {
	best, bestPrefix := "", ""
	for prefix, ns := range n.byPrefix {
		if strings.HasPrefix(iri, ns) && len(ns) > len(best) {
			best, bestPrefix = ns, prefix
		}
	}
	if best == "" {
		return iri
	}
	local := iri[len(best):]
	if strings.ContainsAny(local, "/#") {
		return iri // local part would be ambiguous when re-expanded
	}
	return bestPrefix + ":" + local
}

// ShortenTerm renders a term compactly: IRIs are shortened via the prefix
// table, other terms use their N-Triples form.
func (n *Namespaces) ShortenTerm(t Term) string {
	if t.IsIRI() {
		return n.Shorten(t.Value())
	}
	return t.String()
}

// Prefixes returns the bound prefixes in sorted order.
func (n *Namespaces) Prefixes() []string {
	out := make([]string, 0, len(n.byPrefix))
	for p := range n.byPrefix {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the table.
func (n *Namespaces) Clone() *Namespaces {
	out := NewNamespaces()
	for p, ns := range n.byPrefix {
		out.byPrefix[p] = ns
	}
	return out
}
