package rdf

import (
	"sync"
	"sync/atomic"
)

// termStripes is the number of lock stripes of the intern table. A power of
// two so stripe selection is a mask.
const termStripes = 64

// termBlockShift sizes the append-only blocks of the id→Term store: 4096
// terms per block keeps growth cheap without large up-front allocation.
const (
	termBlockShift = 12
	termBlockSize  = 1 << termBlockShift
	termBlockMask  = termBlockSize - 1
)

type termBlock [termBlockSize]Term

// termTable is the graph's concurrent dictionary: a striped Term→id map for
// interning plus an append-only, lock-free-for-readers id→Term store.
//
// Interning takes one stripe lock; resolving an id back to its term takes no
// lock at all. That is safe because ids are published only after the term is
// written into its block slot (the happens-before edge runs through the
// stripe or shard lock the id was read under, plus the atomic blocks
// pointer), and published slots are never rewritten.
type termTable struct {
	stripes [termStripes]termStripe

	// appendMu serialises writers of the id→Term store.
	appendMu sync.Mutex
	// blocks is a copy-on-write slice of block pointers; readers load it
	// atomically and index without locking.
	blocks atomic.Pointer[[]*termBlock]
	// n is the number of interned terms (the next id to allocate).
	n atomic.Uint32
}

type termStripe struct {
	mu sync.RWMutex
	m  map[Term]id
}

func newTermTable() *termTable {
	t := &termTable{}
	for i := range t.stripes {
		t.stripes[i].m = make(map[Term]id)
	}
	empty := []*termBlock{}
	t.blocks.Store(&empty)
	return t
}

// hashTerm is FNV-1a over the term's fields, with separators so that field
// boundaries cannot collide. Used only for stripe selection.
func hashTerm(t Term) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	h = (h ^ uint32(t.kind)) * prime
	for i := 0; i < len(t.value); i++ {
		h = (h ^ uint32(t.value[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(t.datatype); i++ {
		h = (h ^ uint32(t.datatype[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(t.lang); i++ {
		h = (h ^ uint32(t.lang[i])) * prime
	}
	return h
}

// lookup returns the id for t and whether it has been interned.
func (tt *termTable) lookup(t Term) (id, bool) {
	st := &tt.stripes[hashTerm(t)&(termStripes-1)]
	st.mu.RLock()
	i, ok := st.m[t]
	st.mu.RUnlock()
	return i, ok
}

// intern returns the id for t, allocating one if needed. Safe for
// concurrent use.
func (tt *termTable) intern(t Term) id {
	st := &tt.stripes[hashTerm(t)&(termStripes-1)]
	st.mu.RLock()
	i, ok := st.m[t]
	st.mu.RUnlock()
	if ok {
		return i
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok = st.m[t]; ok {
		return i
	}
	i = tt.append(t)
	st.m[t] = i
	return i
}

// append writes t into the next slot of the id→Term store and returns its
// id. The new id is not visible to readers until the caller publishes it.
func (tt *termTable) append(t Term) id {
	tt.appendMu.Lock()
	defer tt.appendMu.Unlock()
	n := tt.n.Load()
	blocks := *tt.blocks.Load()
	if int(n>>termBlockShift) == len(blocks) {
		grown := make([]*termBlock, len(blocks)+1)
		copy(grown, blocks)
		grown[len(blocks)] = new(termBlock)
		tt.blocks.Store(&grown)
		blocks = grown
	}
	blocks[n>>termBlockShift][n&termBlockMask] = t
	tt.n.Store(n + 1)
	return id(n)
}

// term resolves an interned id. Lock-free; the id must have been obtained
// from lookup, intern, or an index read.
func (tt *termTable) term(i id) Term {
	blocks := *tt.blocks.Load()
	return blocks[i>>termBlockShift][i&termBlockMask]
}

// count returns the number of interned terms.
func (tt *termTable) count() int { return int(tt.n.Load()) }
