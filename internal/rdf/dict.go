package rdf

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// termStripes is the number of lock stripes of the intern table. A power of
// two so stripe selection is a mask.
const termStripes = 64

// termBlockShift sizes the append-only blocks of the id→Term store: 4096
// terms per block keeps growth cheap without large up-front allocation.
const (
	termBlockShift = 12
	termBlockSize  = 1 << termBlockShift
	termBlockMask  = termBlockSize - 1
)

type termBlock [termBlockSize]Term

// termTable is the graph's concurrent dictionary: a striped Term→id map for
// interning plus an append-only, lock-free-for-readers id→Term store.
//
// Both directions are lock-free on the read path, by the same
// copy-on-write discipline the graph shards use. id→Term: ids are published
// only after the term is written into its block slot, and published slots
// are never rewritten. Term→id: each stripe publishes an immutable lookup
// map through an atomic pointer; interning adds new terms to a small
// mutable delta under the stripe lock and republishes the merged map once
// the delta has grown past a fraction of the published one, so the copy
// cost is amortised O(1) per intern. A reader only falls back to the
// stripe lock when the term misses the published map while a delta is
// pending — in the steady state (and for terms interned before the last
// promotion) lookups take zero locks.
type termTable struct {
	stripes [termStripes]termStripe

	// appendMu serialises writers of the id→Term store.
	appendMu sync.Mutex
	// blocks is a copy-on-write slice of block pointers; readers load it
	// atomically and index without locking.
	blocks atomic.Pointer[[]*termBlock]
	// n is the number of interned terms (the next id to allocate).
	n atomic.Uint32
}

type termStripe struct {
	mu sync.Mutex
	// read is the immutable published Term→id map; never mutated after
	// Store.
	read atomic.Pointer[map[Term]id]
	// dirty holds terms interned since the last promotion; nil when clean.
	// Guarded by mu; hasDirty mirrors dirty != nil so readers can rule out
	// a pending delta without locking.
	dirty    map[Term]id
	hasDirty atomic.Bool
}

func newTermTable() *termTable {
	t := &termTable{}
	empty := make(map[Term]id)
	for i := range t.stripes {
		t.stripes[i].read.Store(&empty)
	}
	blocks := []*termBlock{}
	t.blocks.Store(&blocks)
	return t
}

// hashTerm is FNV-1a over the term's fields, with separators so that field
// boundaries cannot collide. Used only for stripe selection.
func hashTerm(t Term) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	h = (h ^ uint32(t.kind)) * prime
	for i := 0; i < len(t.value); i++ {
		h = (h ^ uint32(t.value[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(t.datatype); i++ {
		h = (h ^ uint32(t.datatype[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(t.lang); i++ {
		h = (h ^ uint32(t.lang[i])) * prime
	}
	return h
}

// lookup returns the id for t and whether it has been interned. Lock-free
// unless the stripe has an unpromoted delta and the published map misses.
func (tt *termTable) lookup(t Term) (id, bool) {
	st := &tt.stripes[hashTerm(t)&(termStripes-1)]
	if i, ok := (*st.read.Load())[t]; ok {
		return i, ok
	}
	if !st.hasDirty.Load() {
		// a promotion may have raced the load above (the term moving from
		// dirty into a new read map before hasDirty cleared); hasDirty is
		// stored after the merged map, so one fresh load decides
		i, ok := (*st.read.Load())[t]
		return i, ok
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok := (*st.read.Load())[t]; ok {
		return i, ok
	}
	i, ok := st.dirty[t]
	return i, ok
}

// intern returns the id for t, allocating one if needed. Safe for
// concurrent use.
func (tt *termTable) intern(t Term) id { return tt.internStripe(t, nil) }

// tripleID is a dictionary-encoded triple, the unit batch commits work in.
type tripleID struct{ s, p, o id }

// internOps resolves a batch's ops: insertion ops intern their terms,
// removal ops (isDel; nil for an add-only batch, which then skips removal
// handling entirely) only look them up — skip[i] marks removals of terms
// the graph has never seen, which are no-ops. Unlike the per-call intern
// path, which re-evaluates the amortised promotion rule under the stripe
// lock on every intern, the batch path marks the stripes it dirtied and
// promotes each COW delta at most once, at the end of the batch — the
// inner loop stays lock-acquire/insert/unlock and the merged read map is
// rebuilt once per stripe per batch instead of being re-checked per term.
// Large batches resolve across a worker pool (interning is already
// concurrent-safe: stripe locks plus the append lock), so the dictionary
// phase scales like the per-shard build phases that follow it.
func (tt *termTable) internOps(ops []Triple, isDel func(int) bool, ids []tripleID, skip []bool) {
	workers := runtime.GOMAXPROCS(0)
	if len(ops) < internParallelThreshold || workers < 2 {
		var touched [termStripes]bool
		tt.internRange(ops, 0, len(ops), isDel, ids, skip, &touched)
		tt.promoteTouched(&touched)
		return
	}
	if workers > 8 {
		workers = 8
	}
	// Pass 1: intern the insertion ops' terms in parallel. Removal ops are
	// NOT resolved here: a removal whose terms are first interned by an
	// earlier Add in the same batch must observe that intern, and with ops
	// chunked across workers the Add may still be in flight on another
	// worker — resolving the lookup now could miss and wrongly mark the
	// removal skipped. Removal lookups are order-independent once every
	// term the batch interns is present, so they run as a second pass
	// after the barrier.
	touchedByW := make([][termStripes]bool, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (len(ops) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := lo + chunk
			if hi > len(ops) {
				hi = len(ops)
			}
			for i := lo; i < hi; i++ {
				if isDel != nil && isDel(i) {
					continue
				}
				t := ops[i]
				ids[i] = tripleID{
					tt.internBatched(t.S, &touchedByW[w]),
					tt.internBatched(t.P, &touchedByW[w]),
					tt.internBatched(t.O, &touchedByW[w]),
				}
			}
		}(w)
	}
	wg.Wait()
	var touched [termStripes]bool
	for w := range touchedByW {
		for s, t := range touchedByW[w] {
			if t {
				touched[s] = true
			}
		}
	}
	// Promote before the removal pass so its lookups hit the published
	// maps lock-free.
	tt.promoteTouched(&touched)
	if isDel == nil {
		return
	}

	// Pass 2: resolve removal lookups, now that all of the batch's terms
	// are interned. Order-independent, so the pass fans out over the same
	// chunks — a removal-heavy batch keeps the parallel dictionary phase.
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := lo + chunk
			if hi > len(ops) {
				hi = len(ops)
			}
			for i := lo; i < hi; i++ {
				if isDel(i) {
					tt.lookupRemoval(ops[i], i, ids, skip)
				}
			}
		}(w)
	}
	wg.Wait()
}

// lookupRemoval resolves the terms of removal op i into ids[i], marking
// skip[i] when any term is unknown (removing a never-interned triple is a
// no-op and must not grow the dictionary).
func (tt *termTable) lookupRemoval(t Triple, i int, ids []tripleID, skip []bool) {
	s, ok := tt.lookup(t.S)
	if !ok {
		skip[i] = true
		return
	}
	p, ok := tt.lookup(t.P)
	if !ok {
		skip[i] = true
		return
	}
	o, ok := tt.lookup(t.O)
	if !ok {
		skip[i] = true
		return
	}
	ids[i] = tripleID{s, p, o}
}

// internParallelThreshold is the batch size above which internOps fans the
// dictionary resolution out across goroutines.
const internParallelThreshold = 2048

// internRange resolves ops[lo:hi] into ids/skip in op order, recording
// dirtied stripes. Sequential only: processing in order is what lets a
// removal see the terms an earlier Add in the same range interned.
func (tt *termTable) internRange(ops []Triple, lo, hi int, isDel func(int) bool, ids []tripleID, skip []bool, touched *[termStripes]bool) {
	for i := lo; i < hi; i++ {
		if isDel != nil && isDel(i) {
			tt.lookupRemoval(ops[i], i, ids, skip)
			continue
		}
		t := ops[i]
		ids[i] = tripleID{
			tt.internBatched(t.S, touched),
			tt.internBatched(t.P, touched),
			tt.internBatched(t.O, touched),
		}
	}
}

// internBatched is intern without the per-call promotion check; it records
// the stripe as touched instead so internOps can promote once at the end.
func (tt *termTable) internBatched(t Term, touched *[termStripes]bool) id {
	return tt.internStripe(t, touched)
}

// internStripe is the one stripe-locked intern path behind intern and
// internBatched. A fresh allocation either marks the stripe in touched
// (batched mode: the caller promotes once at the end) or, when touched is
// nil, evaluates the amortised promotion rule inline under the same lock.
func (tt *termTable) internStripe(t Term, touched *[termStripes]bool) id {
	si := hashTerm(t) & (termStripes - 1)
	st := &tt.stripes[si]
	if i, ok := (*st.read.Load())[t]; ok {
		return i
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok := (*st.read.Load())[t]; ok {
		return i
	}
	if i, ok := st.dirty[t]; ok {
		return i
	}
	i := tt.append(t)
	if st.dirty == nil {
		st.dirty = make(map[Term]id)
		st.hasDirty.Store(true)
	}
	st.dirty[t] = i
	if touched != nil {
		touched[si] = true
	} else if len(st.dirty)*4 >= len(*st.read.Load())+16 {
		st.promoteLocked()
	}
	return i
}

// promoteTouched applies the amortised promotion rule once per stripe the
// batch dirtied. Deltas still below the threshold stay pending (their
// terms fall back to the stripe lock on lookup, exactly as with per-call
// interning), so the worst-case copy cost stays amortised O(1) per term
// even across many small batches.
func (tt *termTable) promoteTouched(touched *[termStripes]bool) {
	for si := range tt.stripes {
		if !touched[si] {
			continue
		}
		st := &tt.stripes[si]
		st.mu.Lock()
		if st.dirty != nil && len(st.dirty)*4 >= len(*st.read.Load())+16 {
			st.promoteLocked()
		}
		st.mu.Unlock()
	}
}

// promoteLocked publishes read ∪ dirty as the new immutable map. Caller
// holds st.mu.
func (st *termStripe) promoteLocked() {
	read := *st.read.Load()
	merged := make(map[Term]id, len(read)+len(st.dirty))
	for k, v := range read {
		merged[k] = v
	}
	for k, v := range st.dirty {
		merged[k] = v
	}
	st.read.Store(&merged)
	st.dirty = nil
	st.hasDirty.Store(false)
}

// promoteAll forces every stripe's pending delta into its published map,
// restoring the all-hits-lock-free steady state. Used by tests asserting
// the lock-free read path.
func (tt *termTable) promoteAll() {
	for i := range tt.stripes {
		st := &tt.stripes[i]
		st.mu.Lock()
		if st.dirty != nil {
			st.promoteLocked()
		}
		st.mu.Unlock()
	}
}

// append writes t into the next slot of the id→Term store and returns its
// id. The new id is not visible to readers until the caller publishes it.
func (tt *termTable) append(t Term) id {
	tt.appendMu.Lock()
	defer tt.appendMu.Unlock()
	n := tt.n.Load()
	blocks := *tt.blocks.Load()
	if int(n>>termBlockShift) == len(blocks) {
		grown := make([]*termBlock, len(blocks)+1)
		copy(grown, blocks)
		grown[len(blocks)] = new(termBlock)
		tt.blocks.Store(&grown)
		blocks = grown
	}
	blocks[n>>termBlockShift][n&termBlockMask] = t
	tt.n.Store(n + 1)
	return id(n)
}

// bulkLoad installs terms as ids 0..len(terms)-1 in one pass — the
// recovery twin of len(terms) intern calls. The table must be empty. The
// id blocks and every stripe's published map are built privately and
// installed at the end, so a failed load (duplicate term — corruption,
// since checkpoints write each term once) leaves the table untouched.
// The loaded table is in the all-hits-lock-free steady state: no stripe
// has a pending delta.
func (tt *termTable) bulkLoad(terms []Term) error {
	if tt.n.Load() != 0 {
		return fmt.Errorf("rdf: bulk term load into a non-empty dictionary")
	}
	nb := (len(terms) + termBlockSize - 1) >> termBlockShift
	blocks := make([]*termBlock, nb)
	for i := range blocks {
		blocks[i] = new(termBlock)
	}
	perStripe := len(terms)/termStripes + 1
	var maps [termStripes]map[Term]id
	for i, t := range terms {
		blocks[i>>termBlockShift][i&termBlockMask] = t
		si := hashTerm(t) & (termStripes - 1)
		m := maps[si]
		if m == nil {
			m = make(map[Term]id, perStripe)
			maps[si] = m
		}
		if _, dup := m[t]; dup {
			return fmt.Errorf("rdf: duplicate term in bulk load")
		}
		m[t] = id(i)
	}
	for si := range maps {
		if maps[si] != nil {
			m := maps[si]
			tt.stripes[si].read.Store(&m)
		}
	}
	tt.blocks.Store(&blocks)
	tt.n.Store(uint32(len(terms)))
	return nil
}

// term resolves an interned id. Lock-free; the id must have been obtained
// from lookup, intern, or an index read.
func (tt *termTable) term(i id) Term {
	blocks := *tt.blocks.Load()
	return blocks[i>>termBlockShift][i&termBlockMask]
}

// count returns the number of interned terms.
func (tt *termTable) count() int { return int(tt.n.Load()) }
