package rdf

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotEqualsFrozenCopy is the snapshot-isolation property: a
// Snapshot captured after the k-th operation must match a frozen copy of
// the graph taken at the same instant — and must keep matching it after
// every later write, on Len, sorted triples, membership, counts and every
// Match access path.
func TestSnapshotEqualsFrozenCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGraphSharded(8)
	ref := NewGraphSharded(1) // replayed alongside; frozen copies are clones

	type capture struct {
		snap   *Snapshot
		frozen *Graph
	}
	var caps []capture
	const ops = 1200
	for i := 0; i < ops; i++ {
		tr := randTriple(rng)
		if rng.Intn(4) == 0 {
			g.Remove(tr)
			ref.Remove(tr)
		} else {
			g.Add(tr)
			ref.Add(tr)
		}
		if i%150 == 0 {
			caps = append(caps, capture{snap: g.Snapshot(), frozen: ref.Clone()})
		}
	}

	p0 := IRI("http://e/p0")
	o0 := IRI("http://e/o0")
	s0 := IRI("http://e/s0")
	for k, c := range caps {
		if c.snap.Len() != c.frozen.Len() {
			t.Fatalf("capture %d: snapshot Len = %d, frozen copy = %d", k, c.snap.Len(), c.frozen.Len())
		}
		st, ft := c.snap.Triples(), c.frozen.Triples()
		for i := range st {
			if st[i] != ft[i] {
				t.Fatalf("capture %d: Triples()[%d] = %v, frozen %v", k, i, st[i], ft[i])
			}
		}
		// every access path agrees with the frozen copy
		for _, probe := range []struct {
			name    string
			s, p, o *Term
		}{
			{"spo", &s0, &p0, &o0}, {"sp", &s0, &p0, nil}, {"po", nil, &p0, &o0},
			{"so", &s0, nil, &o0}, {"s", &s0, nil, nil}, {"p", nil, &p0, nil},
			{"o", nil, nil, &o0}, {"full", nil, nil, nil},
		} {
			var got, want int
			c.snap.Match(probe.s, probe.p, probe.o, func(Triple) bool { got++; return true })
			c.frozen.Match(probe.s, probe.p, probe.o, func(Triple) bool { want++; return true })
			if got != want {
				t.Fatalf("capture %d: Match(%s) = %d rows, frozen %d", k, probe.name, got, want)
			}
			if gc, wc := c.snap.MatchCount(probe.s, probe.p, probe.o), c.frozen.MatchCount(probe.s, probe.p, probe.o); gc != wc {
				t.Fatalf("capture %d: MatchCount(%s) = %d, frozen %d", k, probe.name, gc, wc)
			}
		}
		if ps, ok := c.snap.PredStats(p0); ok {
			ws, _ := c.frozen.PredStats(p0)
			if ps != ws {
				t.Fatalf("capture %d: PredStats = %+v, frozen %+v", k, ps, ws)
			}
		}
	}
}

// TestSnapshotStableUnderConcurrentWrites hammers snapshot reads against
// concurrent Add/Remove/Merge at shard counts 1, 4 and 16 (the -race
// configuration of CI): every captured snapshot must return identical
// results on two passes regardless of what writers do in between, and its
// ForEach count must equal its Len.
func TestSnapshotStableUnderConcurrentWrites(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			g := NewGraphSharded(shards)
			rng := rand.New(rand.NewSource(int64(shards)))
			seed := make([]Triple, 500)
			for i := range seed {
				seed[i] = randTriple(rng)
			}
			g.AddAll(seed)

			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for !stop.Load() {
						tr := randTriple(rng)
						if rng.Intn(3) == 0 {
							g.Remove(tr)
						} else {
							g.Add(tr)
						}
					}
				}(w)
			}
			// one writer exercises the bulk path
			wg.Add(1)
			go func() {
				defer wg.Done()
				other := NewGraphSharded(2)
				rng := rand.New(rand.NewSource(200))
				for i := 0; i < 300; i++ {
					other.Add(randTriple(rng))
				}
				for !stop.Load() {
					g.Merge(other)
					time.Sleep(time.Millisecond)
				}
			}()

			p0 := IRI("http://e/p0")
			readers := runtime.GOMAXPROCS(0)
			if readers < 4 {
				readers = 4
			}
			var rwg sync.WaitGroup
			errs := make(chan string, readers)
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for i := 0; i < 40; i++ {
						snap := g.Snapshot()
						count := func() (n int) {
							snap.Match(nil, &p0, nil, func(Triple) bool { n++; return true })
							return
						}
						first := count()
						forEach := 0
						snap.ForEach(func(Triple) bool { forEach++; return true })
						if second := count(); second != first {
							errs <- fmt.Sprintf("snapshot changed between passes: %d then %d", first, second)
							return
						}
						if forEach != snap.Len() {
							errs <- fmt.Sprintf("snapshot ForEach = %d triples, Len = %d", forEach, snap.Len())
							return
						}
					}
				}()
			}
			rwg.Wait()
			stop.Store(true)
			wg.Wait()
			select {
			case msg := <-errs:
				t.Fatal(msg)
			default:
			}
		})
	}
}

// TestVersionExactUnderConcurrency pins the Version contract — "incremented
// by every successful Add or Remove" — under concurrent writers racing on
// overlapping triples: the final version delta must equal the number of
// operations that reported success, exactly.
func TestVersionExactUnderConcurrency(t *testing.T) {
	g := NewGraphSharded(8)
	v0 := g.Version()
	var successes atomic.Int64
	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				tr := randTriple(rng)
				if rng.Intn(3) == 0 {
					if g.Remove(tr) {
						successes.Add(1)
					}
				} else {
					if g.Add(tr) {
						successes.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := g.Version()-v0, uint64(successes.Load()); got != want {
		t.Fatalf("version delta = %d, want %d (one bump per successful Add/Remove)", got, want)
	}
	// a snapshot's epoch is the capture-time version
	if e := g.Snapshot().Epoch(); e != g.Version() {
		t.Fatalf("snapshot epoch = %d, version = %d", e, g.Version())
	}
}

// TestReadPathTakesNoLocks is the structural lock-freedom assertion: with
// every shard mutex and every dictionary stripe mutex held by the test, the
// whole read surface — Match on all access paths, MatchShard, MatchCount,
// Has, Stats, PredStats, Snapshot capture and snapshot reads — must still
// complete. Any mutex acquisition on the read path would deadlock and fail
// the test by timeout.
func TestReadPathTakesNoLocks(t *testing.T) {
	g := NewGraphSharded(8)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		g.Add(randTriple(rng))
	}
	// promote pending dictionary deltas so term lookups are in the
	// published read maps (the steady state between write bursts)
	g.dict.promoteAll()

	for _, sh := range g.shards {
		sh.mu.Lock()
	}
	for i := range g.dict.stripes {
		g.dict.stripes[i].mu.Lock()
	}
	defer func() {
		for _, sh := range g.shards {
			sh.mu.Unlock()
		}
		for i := range g.dict.stripes {
			g.dict.stripes[i].mu.Unlock()
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		p0 := IRI("http://e/p0")
		s0 := IRI("http://e/s0")
		o0 := IRI("http://e/o0")
		n := 0
		g.Match(nil, &p0, nil, func(Triple) bool { n++; return true })
		g.Match(&s0, nil, nil, func(Triple) bool { n++; return true })
		g.Match(nil, nil, &o0, func(Triple) bool { n++; return true })
		g.Match(nil, nil, nil, func(Triple) bool { n++; return true })
		for i := 0; i < g.ShardCount(); i++ {
			g.MatchShard(i, nil, nil, &o0, func(Triple) bool { n++; return true })
		}
		_ = g.MatchCount(nil, &p0, nil)
		_ = g.Has(Triple{S: s0, P: p0, O: o0})
		_ = g.Stats()
		_, _ = g.PredStats(p0)
		snap := g.Snapshot()
		snap.Match(nil, &p0, nil, func(Triple) bool { n++; return true })
		_ = snap.Len()
		_, _ = snap.PredStats(p0)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("read path blocked while shard/dict mutexes were held: a lock crept into Match/Stats/PredStats")
	}
}

// TestSnapshotIgnoresLaterWrites pins the simplest possible isolation
// story: capture, write, and the snapshot must not see the write while the
// graph does.
func TestSnapshotIgnoresLaterWrites(t *testing.T) {
	g := NewGraph()
	a := Triple{S: IRI("http://e/a"), P: IRI("http://e/p"), O: IRI("http://e/b")}
	b := Triple{S: IRI("http://e/c"), P: IRI("http://e/p"), O: IRI("http://e/d")}
	g.Add(a)
	snap := g.Snapshot()
	epoch := snap.Epoch()
	g.Add(b)
	g.Remove(a)
	if !snap.Has(a) || snap.Has(b) {
		t.Fatalf("snapshot drifted: Has(a)=%v Has(b)=%v, want true/false", snap.Has(a), snap.Has(b))
	}
	if snap.Len() != 1 {
		t.Fatalf("snapshot Len = %d, want 1", snap.Len())
	}
	if snap.Epoch() != epoch || g.Epoch() != epoch+2 {
		t.Fatalf("epochs: snapshot %d (captured %d), graph %d", snap.Epoch(), epoch, g.Epoch())
	}
}

// TestDictLookupDuringPromotion pins the promotion race of the term
// dictionary's lock-free lookup: a term that intern has returned for must
// be found by every subsequent lookup, even when a stripe promotion (dirty
// delta merging into a fresh published map) races the reader between its
// read-map load and its dirty check.
func TestDictLookupDuringPromotion(t *testing.T) {
	tt := newTermTable()
	const terms = 20000
	published := make(chan Term, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(published)
		for i := 0; i < terms; i++ {
			tm := IRI(fmt.Sprintf("http://e/t%d", i))
			tt.intern(tm)
			published <- tm
		}
	}()
	var recent []Term
	for tm := range published {
		if _, ok := tt.lookup(tm); !ok {
			t.Fatalf("lookup(%v) = false for an interned term", tm)
		}
		recent = append(recent, tm)
		if len(recent) > 64 {
			recent = recent[1:]
		}
		// re-probe older terms too: these sit on either side of promotions
		for _, old := range recent {
			if _, ok := tt.lookup(old); !ok {
				t.Fatalf("lookup(%v) = false for a previously verified term", old)
			}
		}
	}
	wg.Wait()
}
