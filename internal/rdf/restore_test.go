package rdf

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// restoreFixture builds the same logical graph twice: once through the
// batch write path (the reference) and once through RestoreBulk from a
// checkpoint-shaped term list + id-triples (the fast path under test).
func restoreFixture(t *testing.T, shards, n int, seed int64) (ref, bulk *Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	triples := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		var o Term
		switch rng.Intn(4) {
		case 0:
			o = Literal(fmt.Sprintf("v%d", rng.Intn(n/2+1)))
		case 1:
			o = LangLiteral(fmt.Sprintf("v%d", i), "en")
		case 2:
			o = Blank(fmt.Sprintf("b%d", rng.Intn(16)))
		default:
			o = IRI(fmt.Sprintf("http://e/o%d", rng.Intn(n/3+1)))
		}
		triples = append(triples, Triple{
			S: IRI(fmt.Sprintf("http://e/s%d", rng.Intn(n/2+1))),
			P: IRI(fmt.Sprintf("http://e/p%d", rng.Intn(9))),
			O: o,
		})
	}

	ref = NewGraphSharded(shards)
	ref.AddAll(triples)

	// Dictionary-encode the triple list the way a checkpoint writer does:
	// ids in first-use order, duplicates included in the id-triple stream.
	ids := make(map[Term]uint32)
	var terms []Term
	intern := func(x Term) uint32 {
		if i, ok := ids[x]; ok {
			return i
		}
		i := uint32(len(terms))
		ids[x] = i
		terms = append(terms, x)
		return i
	}
	idts := make([]IDTriple, len(triples))
	for i, tr := range triples {
		idts[i] = IDTriple{S: intern(tr.S), P: intern(tr.P), O: intern(tr.O)}
	}
	bulk = NewGraphSharded(shards)
	if err := bulk.RestoreBulk(terms, idts); err != nil {
		t.Fatalf("RestoreBulk: %v", err)
	}
	return ref, bulk
}

// TestRestoreBulkEquivalence pins RestoreBulk's contract: the graph it
// builds is indistinguishable from one loaded through the batch write
// path — same triples on every read surface, same statistics, same
// effective version.
func TestRestoreBulkEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		ref, bulk := restoreFixture(t, shards, 600, int64(shards)*7+1)

		if bulk.Len() != ref.Len() {
			t.Fatalf("shards=%d: len %d != %d", shards, bulk.Len(), ref.Len())
		}
		if bulk.Version() != ref.Version() {
			t.Fatalf("shards=%d: version %d != %d", shards, bulk.Version(), ref.Version())
		}
		if bulk.Stats() != ref.Stats() {
			t.Fatalf("shards=%d: stats %+v != %+v", shards, bulk.Stats(), ref.Stats())
		}

		// ForEach / Has
		ref.ForEach(func(tr Triple) bool {
			if !bulk.Has(tr) {
				t.Fatalf("shards=%d: missing %v", shards, tr)
			}
			return true
		})
		bulk.ForEach(func(tr Triple) bool {
			if !ref.Has(tr) {
				t.Fatalf("shards=%d: extra %v", shards, tr)
			}
			return true
		})

		// Match over every bound/unbound pattern on a sample of triples,
		// plus MatchCount and per-predicate statistics.
		sample := ref.Triples()
		for i := 0; i < len(sample); i += 37 {
			tr := sample[i]
			for _, pat := range [][3]*Term{
				{&tr.S, nil, nil}, {nil, &tr.P, nil}, {nil, nil, &tr.O},
				{&tr.S, &tr.P, nil}, {nil, &tr.P, &tr.O}, {&tr.S, nil, &tr.O},
				{&tr.S, &tr.P, &tr.O},
			} {
				want := collectMatch(ref, pat[0], pat[1], pat[2])
				got := collectMatch(bulk, pat[0], pat[1], pat[2])
				if !sameTriples(want, got) {
					t.Fatalf("shards=%d: Match(%v,%v,%v) differs: %d vs %d rows",
						shards, pat[0], pat[1], pat[2], len(want), len(got))
				}
				if ref.MatchCount(pat[0], pat[1], pat[2]) != bulk.MatchCount(pat[0], pat[1], pat[2]) {
					t.Fatalf("shards=%d: MatchCount differs for pattern", shards)
				}
			}
			wantPS, wok := ref.PredStats(tr.P)
			gotPS, gok := bulk.PredStats(tr.P)
			if wok != gok || wantPS != gotPS {
				t.Fatalf("shards=%d: PredStats(%v) %v/%v != %v/%v", shards, tr.P, gotPS, gok, wantPS, wok)
			}
		}

		// Snapshot surface and sorted projection
		if bulk.Snapshot().Epoch() != ref.Snapshot().Epoch() {
			t.Fatalf("shards=%d: snapshot epochs differ", shards)
		}
		if !sameTriples(ref.Triples(), bulk.Triples()) {
			t.Fatalf("shards=%d: Triples() differ", shards)
		}

		// The restored graph is a normal live graph: writes keep working.
		extra := Triple{S: IRI("http://e/post"), P: IRI("http://e/p0"), O: Literal("post")}
		if !bulk.Add(extra) || !bulk.Has(extra) {
			t.Fatalf("shards=%d: restored graph rejects writes", shards)
		}
	}
}

func collectMatch(g *Graph, s, p, o *Term) []Triple {
	var out []Triple
	g.Match(s, p, o, func(t Triple) bool { out = append(out, t); return true })
	return out
}

func sameTriples(a, b []Triple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t Triple) string { return t.String() }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestRestoreBulkValidation pins the no-mutation-on-error contract the
// checkpoint fallback depends on: a bad id or an ill-typed triple is
// rejected before the graph or its dictionary is touched.
func TestRestoreBulkValidation(t *testing.T) {
	terms := []Term{IRI("http://e/s"), IRI("http://e/p"), Literal("v")}
	for _, bad := range []IDTriple{
		{S: 3, P: 1, O: 2}, // id out of range
		{S: 2, P: 1, O: 0}, // literal subject
		{S: 0, P: 2, O: 1}, // literal predicate
	} {
		g := NewGraph()
		if err := g.RestoreBulk(terms, []IDTriple{{S: 0, P: 1, O: 2}, bad}); err == nil {
			t.Fatalf("RestoreBulk accepted %+v", bad)
		}
		if g.Len() != 0 || g.Version() != 0 {
			t.Fatalf("failed RestoreBulk mutated the graph: len=%d version=%d", g.Len(), g.Version())
		}
		// still usable as an empty graph afterwards
		if err := g.RestoreBulk(terms, []IDTriple{{S: 0, P: 1, O: 2}}); err != nil {
			t.Fatalf("clean retry: %v", err)
		}
		if g.Len() != 1 {
			t.Fatalf("retry len %d", g.Len())
		}
	}
	// non-empty graph refused
	g := NewGraph()
	g.Add(Triple{S: IRI("http://e/s"), P: IRI("http://e/p"), O: Literal("x")})
	if err := g.RestoreBulk(terms, nil); err == nil {
		t.Fatal("RestoreBulk accepted a non-empty graph")
	}
	// duplicate terms in the dictionary refused
	g2 := NewGraph()
	if err := g2.RestoreBulk([]Term{IRI("http://e/s"), IRI("http://e/s")}, nil); err == nil {
		t.Fatal("bulkLoad accepted duplicate terms")
	}
}
