package rdf

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestStats(t *testing.T) {
	g := NewGraph()
	if got := g.Stats(); got != (Stats{}) {
		t.Fatalf("empty graph stats = %+v", got)
	}
	s1, s2 := IRI("http://e/s1"), IRI("http://e/s2")
	p := IRI("http://e/p")
	o1, o2 := Literal("a"), Literal("b")
	g.Add(Triple{S: s1, P: p, O: o1})
	g.Add(Triple{S: s1, P: p, O: o2})
	g.Add(Triple{S: s2, P: p, O: o1})
	want := Stats{Triples: 3, DistinctSubjects: 2, DistinctPredicates: 1, DistinctObjects: 2}
	if got := g.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	g.Remove(Triple{S: s2, P: p, O: o1})
	want = Stats{Triples: 2, DistinctSubjects: 1, DistinctPredicates: 1, DistinctObjects: 2}
	if got := g.Stats(); got != want {
		t.Fatalf("stats after remove = %+v, want %+v", got, want)
	}
}

// TestPredStats pins the per-predicate cardinalities the planner divides
// by, including their incremental maintenance across Remove.
func TestPredStats(t *testing.T) {
	g := NewGraph()
	s1, s2, s3 := IRI("http://e/s1"), IRI("http://e/s2"), IRI("http://e/s3")
	p, q := IRI("http://e/p"), IRI("http://e/q")
	o1, o2 := Literal("a"), Literal("b")
	for _, tr := range []Triple{
		{S: s1, P: p, O: o1}, {S: s1, P: p, O: o2}, {S: s2, P: p, O: o1},
		{S: s3, P: q, O: o1},
	} {
		g.Add(tr)
	}
	if ps, ok := g.PredStats(p); !ok || ps != (PredStats{Triples: 3, DistinctSubjects: 2, DistinctObjects: 2}) {
		t.Fatalf("PredStats(p) = %+v, %v", ps, ok)
	}
	if ps, ok := g.PredStats(q); !ok || ps != (PredStats{Triples: 1, DistinctSubjects: 1, DistinctObjects: 1}) {
		t.Fatalf("PredStats(q) = %+v, %v", ps, ok)
	}
	if _, ok := g.PredStats(IRI("http://e/unused")); ok {
		t.Fatal("PredStats of unused predicate should report false")
	}
	// removing s1's last p-triple drops its distinct-subject contribution
	g.Remove(Triple{S: s1, P: p, O: o1})
	g.Remove(Triple{S: s1, P: p, O: o2})
	if ps, ok := g.PredStats(p); !ok || ps != (PredStats{Triples: 1, DistinctSubjects: 1, DistinctObjects: 1}) {
		t.Fatalf("PredStats(p) after removes = %+v, %v", ps, ok)
	}
	// removing the predicate's last triple unregisters it entirely
	g.Remove(Triple{S: s3, P: q, O: o1})
	if _, ok := g.PredStats(q); ok {
		t.Fatal("PredStats of fully removed predicate should report false")
	}
}

// recountStats recomputes Stats from scratch by iterating the graph — the
// oracle for the incrementally maintained counters.
func recountStats(g *Graph) Stats {
	subs, preds, objs := map[Term]struct{}{}, map[Term]struct{}{}, map[Term]struct{}{}
	n := 0
	g.ForEach(func(t Triple) bool {
		n++
		subs[t.S] = struct{}{}
		preds[t.P] = struct{}{}
		objs[t.O] = struct{}{}
		return true
	})
	return Stats{Triples: n, DistinctSubjects: len(subs), DistinctPredicates: len(preds), DistinctObjects: len(objs)}
}

// TestStatsExactAtQuiescence pins the half of the Stats contract the
// recovery path relies on: once no commit is in flight the counters are
// *exact*, not approximate — after arbitrary interleaved batch storms
// (including removals and cross-batch duplicates), Stats must equal a full
// recount at every shard count. A recovered graph rebuilds its stats
// through the same batch machinery, so this is what makes checkpoint+WAL
// recovery's statistics trustworthy.
func TestStatsExactAtQuiescence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		g := NewGraphSharded(shards)
		rng := rand.New(rand.NewSource(int64(77 + shards)))
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(w*1000 + shards)))
				for i := 0; i < 60; i++ {
					b := g.NewBatch()
					for j := 0; j < r.Intn(40); j++ {
						if r.Intn(4) == 0 {
							b.Remove(randTriple(r))
						} else {
							b.Add(randTriple(r))
						}
					}
					b.Commit()
				}
			}(w)
		}
		wg.Wait()
		// a few single-write ops on top of the batch storm
		for i := 0; i < 50; i++ {
			if rng.Intn(3) == 0 {
				g.Remove(randTriple(rng))
			} else {
				g.Add(randTriple(rng))
			}
		}
		if got, want := g.Stats(), recountStats(g); got != want {
			t.Fatalf("shards=%d: quiescent Stats %+v != recount %+v", shards, got, want)
		}
	}
}

// TestStatsSkewBoundedDuringCommits pins the other half: while commits are
// in flight the counters may trail publication by at most the in-flight
// batches' effective ops — the "batch-scale counter skew" documented on
// Stats. A reader cannot capture a snapshot and Stats atomically, so the
// observable bound sandwiches the pair between two Version reads: the
// graph's length can drift by at most v2−v1 effective ops across the
// window, and with W writers of ≤ B effective ops each the counters trail
// by at most W·B more, giving |Stats.Triples − Snapshot.Len| ≤ (v2−v1) +
// W·B for every observation.
func TestStatsSkewBoundedDuringCommits(t *testing.T) {
	const writers, maxBatch = 4, 32
	g := NewGraphSharded(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := g.NewBatch()
				for j := 0; j < maxBatch; j++ {
					if r.Intn(5) == 0 {
						b.Remove(randTriple(r))
					} else {
						b.Add(randTriple(r))
					}
				}
				b.Commit()
			}
		}(w)
	}
	deadline := time.After(500 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
		}
		v1 := g.Version()
		snap := g.Snapshot()
		st := g.Stats()
		v2 := g.Version()
		diff := st.Triples - snap.Len()
		if diff < 0 {
			diff = -diff
		}
		bound := int(v2-v1) + writers*maxBatch
		if diff > bound {
			close(stop)
			wg.Wait()
			t.Fatalf("stats skew %d exceeds bound %d (window %d ops; stats %+v, snapshot len %d)",
				diff, bound, v2-v1, st, snap.Len())
		}
	}
	close(stop)
	wg.Wait()
	if got, want := g.Stats(), recountStats(g); got != want {
		t.Fatalf("quiescent Stats %+v != recount %+v", got, want)
	}
}
