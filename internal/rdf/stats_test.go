package rdf

import "testing"

func TestStats(t *testing.T) {
	g := NewGraph()
	if got := g.Stats(); got != (Stats{}) {
		t.Fatalf("empty graph stats = %+v", got)
	}
	s1, s2 := IRI("http://e/s1"), IRI("http://e/s2")
	p := IRI("http://e/p")
	o1, o2 := Literal("a"), Literal("b")
	g.Add(Triple{S: s1, P: p, O: o1})
	g.Add(Triple{S: s1, P: p, O: o2})
	g.Add(Triple{S: s2, P: p, O: o1})
	want := Stats{Triples: 3, DistinctSubjects: 2, DistinctPredicates: 1, DistinctObjects: 2}
	if got := g.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	g.Remove(Triple{S: s2, P: p, O: o1})
	want = Stats{Triples: 2, DistinctSubjects: 1, DistinctPredicates: 1, DistinctObjects: 2}
	if got := g.Stats(); got != want {
		t.Fatalf("stats after remove = %+v, want %+v", got, want)
	}
}
