package rdf

import "testing"

func TestStats(t *testing.T) {
	g := NewGraph()
	if got := g.Stats(); got != (Stats{}) {
		t.Fatalf("empty graph stats = %+v", got)
	}
	s1, s2 := IRI("http://e/s1"), IRI("http://e/s2")
	p := IRI("http://e/p")
	o1, o2 := Literal("a"), Literal("b")
	g.Add(Triple{S: s1, P: p, O: o1})
	g.Add(Triple{S: s1, P: p, O: o2})
	g.Add(Triple{S: s2, P: p, O: o1})
	want := Stats{Triples: 3, DistinctSubjects: 2, DistinctPredicates: 1, DistinctObjects: 2}
	if got := g.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	g.Remove(Triple{S: s2, P: p, O: o1})
	want = Stats{Triples: 2, DistinctSubjects: 1, DistinctPredicates: 1, DistinctObjects: 2}
	if got := g.Stats(); got != want {
		t.Fatalf("stats after remove = %+v, want %+v", got, want)
	}
}

// TestPredStats pins the per-predicate cardinalities the planner divides
// by, including their incremental maintenance across Remove.
func TestPredStats(t *testing.T) {
	g := NewGraph()
	s1, s2, s3 := IRI("http://e/s1"), IRI("http://e/s2"), IRI("http://e/s3")
	p, q := IRI("http://e/p"), IRI("http://e/q")
	o1, o2 := Literal("a"), Literal("b")
	for _, tr := range []Triple{
		{S: s1, P: p, O: o1}, {S: s1, P: p, O: o2}, {S: s2, P: p, O: o1},
		{S: s3, P: q, O: o1},
	} {
		g.Add(tr)
	}
	if ps, ok := g.PredStats(p); !ok || ps != (PredStats{Triples: 3, DistinctSubjects: 2, DistinctObjects: 2}) {
		t.Fatalf("PredStats(p) = %+v, %v", ps, ok)
	}
	if ps, ok := g.PredStats(q); !ok || ps != (PredStats{Triples: 1, DistinctSubjects: 1, DistinctObjects: 1}) {
		t.Fatalf("PredStats(q) = %+v, %v", ps, ok)
	}
	if _, ok := g.PredStats(IRI("http://e/unused")); ok {
		t.Fatal("PredStats of unused predicate should report false")
	}
	// removing s1's last p-triple drops its distinct-subject contribution
	g.Remove(Triple{S: s1, P: p, O: o1})
	g.Remove(Triple{S: s1, P: p, O: o2})
	if ps, ok := g.PredStats(p); !ok || ps != (PredStats{Triples: 1, DistinctSubjects: 1, DistinctObjects: 1}) {
		t.Fatalf("PredStats(p) after removes = %+v, %v", ps, ok)
	}
	// removing the predicate's last triple unregisters it entirely
	g.Remove(Triple{S: s3, P: q, O: o1})
	if _, ok := g.PredStats(q); ok {
		t.Fatal("PredStats of fully removed predicate should report false")
	}
}
