// Package rdf implements the RDF data model used throughout the library:
// terms (IRIs, blank nodes and literals), triples, and an indexed,
// dictionary-encoded triple store (Graph). The store is sharded — SPO/OSP
// indexes partitioned by subject hash, POS by predicate hash — and its
// read path is epoch-based and lock-free: each shard's indexes are
// persistent hash-array-mapped tries (tree.go) published as an immutable
// shardState through an atomic pointer, so Match/MatchCount/Has/Stats/
// PredStats traverse a frozen structure without acquiring any lock.
// Graph.Snapshot captures the published states as a stable point-in-time
// view (Snapshot) sharing the Source read surface, so a whole query or
// chase round evaluates against one instant; the term dictionary's
// Term→id direction reads the same way (copy-on-write published maps with
// an amortised promotion of write deltas). See Graph, Snapshot and Source.
//
// The write path is built on transient builders with node ownership tags
// (transient.go). Every node records the token of the builder that
// created it, and the in-place-edit rule is: a builder may mutate exactly
// the nodes carrying its own token — everything else is path-copied first.
// Single writes open a one-shot builder per call; a Batch (batch.go)
// keeps one builder per touched shard across the whole batch, so the
// first touch of a trie path copies it and every later touch edits it in
// place, then freezes the result back into an immutable shardState with
// one atomic publication and one epoch stamp per shard. Freezing is the
// act of dropping the builder: tokens issue from a global counter and are
// never reused, so a published state is deeply immutable by construction
// — no live builder's token matches any node reachable from it, and a
// snapshot can never observe a mutation. Nodes born and discarded within
// the same batch are recycled through per-shard free lists (never nodes
// reachable from a published state), which together with inline node
// storage keeps steady-state bulk writes near zero net allocations.
//
// The model follows the formalisation in Section 2.1 of Dimartino et al.,
// "Peer-to-Peer Semantic Integration of Linked Data" (EDBT/ICDT 2015
// workshops): pairwise disjoint sets I (IRIs), B (blank nodes) and L
// (literals), and RDF triples (s, p, o) ∈ (I ∪ B) × I × (I ∪ B ∪ L).
package rdf

import (
	"fmt"
	"strings"
)

// Kind identifies which of the three disjoint term sets a Term belongs to.
type Kind uint8

const (
	// KindInvalid is the kind of the zero Term.
	KindInvalid Kind = iota
	// KindIRI identifies terms in I.
	KindIRI
	// KindBlank identifies terms in B (blank nodes / labelled nulls).
	KindBlank
	// KindLiteral identifies terms in L.
	KindLiteral
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	default:
		return "invalid"
	}
}

// XSDString is the datatype IRI implicitly carried by plain literals.
const XSDString = "http://www.w3.org/2001/XMLSchema#string"

// RDFLangString is the datatype IRI of language-tagged literals.
const RDFLangString = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

// Term is an RDF term: an IRI, a blank node, or a literal.
//
// Term is an immutable value type and is comparable, so it can be used
// directly as a map key. The zero Term is invalid and reports
// Kind() == KindInvalid.
type Term struct {
	kind     Kind
	value    string // IRI string, blank node label, or literal lexical form
	datatype string // literals only; "" means xsd:string
	lang     string // literals only; non-empty implies rdf:langString
}

// IRI returns the IRI term for s. The string is used verbatim; callers
// resolve prefixed names before constructing terms (see Namespaces).
func IRI(s string) Term { return Term{kind: KindIRI, value: s} }

// Blank returns the blank-node term with the given label (without the
// leading "_:").
func Blank(label string) Term { return Term{kind: KindBlank, value: label} }

// Literal returns a plain literal (datatype xsd:string).
func Literal(lexical string) Term { return Term{kind: KindLiteral, value: lexical} }

// LangLiteral returns a language-tagged literal. The tag is normalised to
// lower case as RDF 1.1 literal equality is case-insensitive on tags.
func LangLiteral(lexical, lang string) Term {
	return Term{kind: KindLiteral, value: lexical, lang: strings.ToLower(lang)}
}

// TypedLiteral returns a literal with an explicit datatype IRI. A datatype
// of xsd:string (or "") yields a plain literal.
func TypedLiteral(lexical, datatype string) Term {
	if datatype == "" || datatype == XSDString {
		return Literal(lexical)
	}
	return Term{kind: KindLiteral, value: lexical, datatype: datatype}
}

// Integer returns a literal of datatype xsd:integer for n.
func Integer(n int) Term {
	return TypedLiteral(fmt.Sprintf("%d", n), "http://www.w3.org/2001/XMLSchema#integer")
}

// Kind reports which disjoint set the term belongs to.
func (t Term) Kind() Kind { return t.kind }

// Value returns the IRI string, blank label, or literal lexical form.
func (t Term) Value() string { return t.value }

// Datatype returns the datatype IRI of a literal. Plain literals report
// xsd:string and language-tagged literals report rdf:langString. Non-literal
// terms report "".
func (t Term) Datatype() string {
	if t.kind != KindLiteral {
		return ""
	}
	if t.lang != "" {
		return RDFLangString
	}
	if t.datatype == "" {
		return XSDString
	}
	return t.datatype
}

// Lang returns the language tag of a language-tagged literal, or "".
func (t Term) Lang() string { return t.lang }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.kind == KindIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.kind == KindBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.kind == KindLiteral }

// IsZero reports whether the term is the invalid zero value.
func (t Term) IsZero() bool { return t.kind == KindInvalid }

// IsName reports whether the term is in I ∪ L, i.e. it is neither a blank
// node nor invalid. Certain answers contain only names (Definition 3).
func (t Term) IsName() bool { return t.kind == KindIRI || t.kind == KindLiteral }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.kind {
	case KindIRI:
		return "<" + t.value + ">"
	case KindBlank:
		return "_:" + t.value
	case KindLiteral:
		s := `"` + EscapeLiteral(t.value) + `"`
		if t.lang != "" {
			return s + "@" + t.lang
		}
		if t.datatype != "" {
			return s + "^^<" + t.datatype + ">"
		}
		return s
	default:
		return "<invalid>"
	}
}

// Compare orders terms: by kind (IRI < blank < literal), then by value,
// then by datatype, then by language tag. It returns -1, 0 or +1.
func (t Term) Compare(u Term) int {
	if t.kind != u.kind {
		if t.kind < u.kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.value, u.value); c != 0 {
		return c
	}
	if c := strings.Compare(t.datatype, u.datatype); c != 0 {
		return c
	}
	return strings.Compare(t.lang, u.lang)
}

// EscapeLiteral escapes a literal lexical form for N-Triples/Turtle output.
func EscapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeLiteral reverses EscapeLiteral. Unknown escapes are kept verbatim.
func UnescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	esc := false
	for _, r := range s {
		if !esc {
			if r == '\\' {
				esc = true
			} else {
				b.WriteRune(r)
			}
			continue
		}
		esc = false
		switch r {
		case 'n':
			b.WriteRune('\n')
		case 'r':
			b.WriteRune('\r')
		case 't':
			b.WriteRune('\t')
		case '"':
			b.WriteRune('"')
		case '\\':
			b.WriteRune('\\')
		default:
			b.WriteRune('\\')
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF triple (s, p, o).
type Triple struct {
	S, P, O Term
}

// NewTriple constructs a triple from its components.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (with trailing dot).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple respects the RDF typing discipline:
// subject ∈ I ∪ B, predicate ∈ I, object ∈ I ∪ B ∪ L.
func (t Triple) Valid() bool {
	if !(t.S.IsIRI() || t.S.IsBlank()) {
		return false
	}
	if !t.P.IsIRI() {
		return false
	}
	return t.O.IsIRI() || t.O.IsBlank() || t.O.IsLiteral()
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// HasBlank reports whether any position of the triple is a blank node.
func (t Triple) HasBlank() bool {
	return t.S.IsBlank() || t.P.IsBlank() || t.O.IsBlank()
}

// Terms returns the three components as a slice in S, P, O order.
func (t Triple) Terms() [3]Term { return [3]Term{t.S, t.P, t.O} }
