package rdf

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermKinds(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind Kind
		iri  bool
		bl   bool
		lit  bool
	}{
		{"iri", IRI("http://example.org/a"), KindIRI, true, false, false},
		{"blank", Blank("b0"), KindBlank, false, true, false},
		{"plain literal", Literal("hi"), KindLiteral, false, false, true},
		{"lang literal", LangLiteral("hi", "EN"), KindLiteral, false, false, true},
		{"typed literal", Integer(7), KindLiteral, false, false, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.term.Kind(); got != tc.kind {
				t.Errorf("Kind() = %v, want %v", got, tc.kind)
			}
			if tc.term.IsIRI() != tc.iri || tc.term.IsBlank() != tc.bl || tc.term.IsLiteral() != tc.lit {
				t.Errorf("kind predicates mismatch for %v", tc.term)
			}
			if tc.term.IsZero() {
				t.Errorf("%v unexpectedly zero", tc.term)
			}
		})
	}
}

func TestZeroTerm(t *testing.T) {
	var z Term
	if !z.IsZero() || z.Kind() != KindInvalid {
		t.Fatalf("zero term should be invalid, got kind %v", z.Kind())
	}
	if z.IsName() {
		t.Fatal("zero term must not be a name")
	}
}

func TestTermIsName(t *testing.T) {
	if !IRI("x").IsName() || !Literal("x").IsName() {
		t.Error("IRIs and literals are names")
	}
	if Blank("x").IsName() {
		t.Error("blank nodes are not names")
	}
}

func TestLangTagNormalised(t *testing.T) {
	a := LangLiteral("chat", "FR")
	b := LangLiteral("chat", "fr")
	if a != b {
		t.Errorf("language tags should be case-insensitive: %v != %v", a, b)
	}
	if a.Lang() != "fr" {
		t.Errorf("Lang() = %q, want fr", a.Lang())
	}
	if a.Datatype() != RDFLangString {
		t.Errorf("Datatype() = %q, want rdf:langString", a.Datatype())
	}
}

func TestTypedLiteralNormalisesXSDString(t *testing.T) {
	if TypedLiteral("x", XSDString) != Literal("x") {
		t.Error("xsd:string typed literal should equal plain literal")
	}
	if TypedLiteral("x", "") != Literal("x") {
		t.Error("empty datatype should mean plain literal")
	}
	if Literal("x").Datatype() != XSDString {
		t.Errorf("plain literal datatype = %q, want xsd:string", Literal("x").Datatype())
	}
}

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{IRI("http://e/a"), "<http://e/a>"},
		{Blank("b1"), "_:b1"},
		{Literal("hi"), `"hi"`},
		{LangLiteral("hi", "en"), `"hi"@en`},
		{Integer(39), `"39"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{Literal("a\"b\nc"), `"a\"b\nc"`},
	}
	for _, tc := range tests {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.term.Kind(), got, tc.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	terms := []Term{
		IRI("a"), IRI("b"), Blank("a"), Blank("b"),
		Literal("a"), LangLiteral("a", "en"), Integer(1),
	}
	for i, a := range terms {
		if a.Compare(a) != 0 {
			t.Errorf("Compare(%v, %v) != 0", a, a)
		}
		for _, b := range terms[i+1:] {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab == 0 && a != b {
				t.Errorf("distinct terms compare equal: %v %v", a, b)
			}
			if ab != -ba {
				t.Errorf("Compare not antisymmetric for %v, %v", a, b)
			}
		}
	}
	if IRI("z").Compare(Blank("a")) >= 0 {
		t.Error("IRIs must sort before blanks")
	}
	if Blank("z").Compare(Literal("a")) >= 0 {
		t.Error("blanks must sort before literals")
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"", "plain", `quote " here`, "line\nbreak", "tab\there", `back\slash`, "\r mixed \t all \" of \\ them \n"}
	for _, s := range cases {
		if got := UnescapeLiteral(EscapeLiteral(s)); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestEscapeRoundTripQuick(t *testing.T) {
	f := func(s string) bool { return UnescapeLiteral(EscapeLiteral(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnescapeUnknownEscapeKept(t *testing.T) {
	if got := UnescapeLiteral(`a\qb`); got != `a\qb` {
		t.Errorf("UnescapeLiteral kept unknown escape wrong: %q", got)
	}
}

func TestTripleValid(t *testing.T) {
	iri, bl, lit := IRI("http://e/x"), Blank("b"), Literal("v")
	tests := []struct {
		tr   Triple
		want bool
	}{
		{Triple{iri, iri, iri}, true},
		{Triple{bl, iri, lit}, true},
		{Triple{iri, iri, bl}, true},
		{Triple{lit, iri, iri}, false},  // literal subject
		{Triple{iri, bl, iri}, false},   // blank predicate
		{Triple{iri, lit, iri}, false},  // literal predicate
		{Triple{Term{}, iri, iri}, false},
	}
	for _, tc := range tests {
		if got := tc.tr.Valid(); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.tr, got, tc.want)
		}
	}
}

func TestTripleStringAndCompare(t *testing.T) {
	tr := NewTriple(IRI("http://e/s"), IRI("http://e/p"), Literal("o"))
	want := `<http://e/s> <http://e/p> "o" .`
	if tr.String() != want {
		t.Errorf("String() = %q, want %q", tr.String(), want)
	}
	tr2 := NewTriple(IRI("http://e/s"), IRI("http://e/p"), Literal("p"))
	if tr.Compare(tr2) >= 0 || tr2.Compare(tr) <= 0 || tr.Compare(tr) != 0 {
		t.Error("triple comparison is not a total order on this pair")
	}
}

func TestTripleHasBlank(t *testing.T) {
	iri := IRI("http://e/x")
	if (Triple{iri, iri, iri}).HasBlank() {
		t.Error("no blank expected")
	}
	if !(Triple{Blank("b"), iri, iri}).HasBlank() {
		t.Error("blank subject not detected")
	}
	if !(Triple{iri, iri, Blank("b")}).HasBlank() {
		t.Error("blank object not detected")
	}
}

// randomTerm produces an arbitrary valid term for property tests.
func randomTerm(r *rand.Rand) Term {
	switch r.Intn(4) {
	case 0:
		return IRI("http://e/" + randWord(r))
	case 1:
		return Blank("b" + randWord(r))
	case 2:
		return Literal(randWord(r))
	default:
		return LangLiteral(randWord(r), "en")
	}
}

func randWord(r *rand.Rand) string {
	n := 1 + r.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(26)))
	}
	return b.String()
}

func TestCompareConsistentWithEqualityQuick(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomTerm(r))
			vals[1] = reflect.ValueOf(randomTerm(r))
		},
	}
	f := func(a, b Term) bool {
		return (a.Compare(b) == 0) == (a == b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
