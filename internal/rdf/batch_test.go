package rdf

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// readSurface captures everything observable about a graph through its
// eight read surfaces: the 2³ Match access paths (every combination of
// bound positions), plus the scalar surfaces derived from them (Len,
// Stats, PredStats, MatchCount, Has over a probe set, sorted Triples).
type readSurface struct {
	Len       int
	Stats     Stats
	Triples   []Triple
	ByPath    [8][]Triple
	Counts    [8]int
	Has       []bool
	PredStats map[string]PredStats
}

// surfaceOf reads g through every access path, probing with the terms of
// universe (a superset of the terms used by the triples under test).
func surfaceOf(g *Graph, universe []Triple) readSurface {
	rs := readSurface{
		Len:       g.Len(),
		Stats:     g.Stats(),
		Triples:   g.Triples(),
		PredStats: map[string]PredStats{},
	}
	probe := universe
	if len(probe) > 24 {
		probe = probe[:24]
	}
	for _, t := range probe {
		rs.Has = append(rs.Has, g.Has(t))
		if st, ok := g.PredStats(t.P); ok {
			rs.PredStats[t.P.String()] = st
		}
	}
	for mask := 0; mask < 8; mask++ {
		var s, p, o *Term
		t0 := universe[0]
		if mask&1 != 0 {
			s = &t0.S
		}
		if mask&2 != 0 {
			p = &t0.P
		}
		if mask&4 != 0 {
			o = &t0.O
		}
		g.Match(s, p, o, func(t Triple) bool {
			rs.ByPath[mask] = append(rs.ByPath[mask], t)
			return true
		})
		sortTriples(rs.ByPath[mask])
		rs.Counts[mask] = g.MatchCount(s, p, o)
	}
	return rs
}

func sortTriples(ts []Triple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Compare(ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// batchScript is a randomised batch workload: a sequence of ops, a cut
// point separating two batches, and a shard count.
type batchScript struct {
	ops    []byte // low bits: triple selector; bit 7: removal
	cut    int
	shards int
}

func (batchScript) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(120) + 4
	ops := make([]byte, n)
	rng.Read(ops)
	return reflect.ValueOf(batchScript{
		ops:    ops,
		cut:    rng.Intn(n),
		shards: []int{1, 4, 16}[rng.Intn(3)],
	})
}

func scriptTriple(b byte) Triple {
	i := int(b & 0x7f)
	return Triple{
		S: IRI(fmt.Sprintf("http://q/s%d", i%11)),
		P: IRI(fmt.Sprintf("http://q/p%d", (i/11)%5)),
		O: IRI(fmt.Sprintf("http://q/o%d", i%17)),
	}
}

// TestBatchEqualsIncrementalQuick is the batch≡incremental property: a
// graph built through Batch commits is triple-for-triple identical — on
// all eight read surfaces, the statistics, and the epoch count — to one
// built by applying the same ops one at a time, for random op sequences,
// cut points and shard counts. It also pins mid-batch isolation: a
// snapshot taken while the second batch is accumulating observes none of
// that batch's effects, and the per-triple Version contract (one bump per
// effective op) survives batching.
func TestBatchEqualsIncrementalQuick(t *testing.T) {
	prop := func(sc batchScript) bool {
		gb := NewGraphSharded(sc.shards)
		gi := NewGraphSharded(sc.shards)
		ok := true
		apply := func(ops []byte) {
			b := gb.NewBatch()
			incremental := 0
			for _, op := range ops {
				tr := scriptTriple(op)
				if op&0x80 != 0 {
					b.Remove(tr)
					if gi.Remove(tr) {
						incremental++
					}
				} else {
					b.Add(tr)
					if gi.Add(tr) {
						incremental++
					}
				}
			}
			// the batch reports exactly the effective ops the one-at-a-time
			// replay saw
			if b.Commit() != incremental {
				ok = false
			}
		}
		apply(sc.ops[:sc.cut])

		// open the second batch but snapshot before committing it: the
		// snapshot must keep matching the first batch's result exactly
		preTriples := gb.Triples()
		snap := gb.Snapshot()
		apply(sc.ops[sc.cut:])
		if !ok || !reflect.DeepEqual(snap.Triples(), preTriples) {
			return false
		}

		universe := make([]Triple, 0, 128)
		for i := 0; i < 128; i++ {
			universe = append(universe, scriptTriple(byte(i)))
		}
		if !reflect.DeepEqual(surfaceOf(gb, universe), surfaceOf(gi, universe)) {
			return false
		}
		// one Version bump per effective op, batched or not
		return gb.Version() == gi.Version()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchMidCommitSnapshotIsolation pins the publication contract
// directly: while a batch is accumulating (before Commit), a snapshot and
// the live graph observe none of its ops; after Commit, all of them.
func TestBatchMidCommitSnapshotIsolation(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		g := NewGraphSharded(shards)
		g.AddAll([]Triple{tr("s0", "p0", "o0"), tr("s1", "p1", "o1")})

		b := g.NewBatch()
		for i := 0; i < 500; i++ {
			b.Add(tr(fmt.Sprintf("bs%d", i%40), fmt.Sprintf("bp%d", i%7), fmt.Sprintf("bo%d", i)))
		}
		b.Remove(tr("s0", "p0", "o0"))

		snap := g.Snapshot()
		if snap.Len() != 2 || g.Len() != 2 {
			t.Fatalf("shards=%d: open batch already visible: snapLen=%d len=%d", shards, snap.Len(), g.Len())
		}
		if !g.Has(tr("s0", "p0", "o0")) {
			t.Fatalf("shards=%d: pending batched Remove already applied", shards)
		}

		added := b.CommitAdded()
		if len(added) != 500 {
			t.Fatalf("shards=%d: CommitAdded returned %d triples, want 500", shards, len(added))
		}
		if g.Len() != 501 { // 2 + 500 - 1
			t.Fatalf("shards=%d: post-commit Len=%d, want 501", shards, g.Len())
		}
		if g.Has(tr("s0", "p0", "o0")) {
			t.Fatalf("shards=%d: batched Remove not applied", shards)
		}
		// the pre-commit snapshot is immune to the whole batch
		if snap.Len() != 2 || !snap.Has(tr("s0", "p0", "o0")) || snap.Has(added[0]) {
			t.Fatalf("shards=%d: snapshot observed the batch", shards)
		}
	}
}

// TestBatchSemantics covers the op-ordering contract: duplicates within a
// batch count once, Add-then-Remove of the same triple leaves it absent
// (both ops effective, two Version bumps), Remove of never-interned terms
// is a no-op that does not grow the dictionary, and a committed Batch
// resets for reuse.
func TestBatchSemantics(t *testing.T) {
	g := NewGraphSharded(4)

	b := g.NewBatch()
	b.Add(tr("a", "b", "c"))
	b.Add(tr("a", "b", "c"))
	if n := b.Commit(); n != 1 {
		t.Fatalf("duplicate Add in one batch counted %d, want 1", n)
	}
	v := g.Version()

	b2 := g.NewBatch()
	b2.Add(tr("x", "y", "z"))
	b2.Remove(tr("x", "y", "z"))
	if n := b2.Commit(); n != 2 {
		t.Fatalf("add+remove committed %d effective ops, want 2", n)
	}
	if g.Has(tr("x", "y", "z")) {
		t.Fatal("add-then-remove left the triple present")
	}
	if g.Version() != v+2 {
		t.Fatalf("Version advanced %d, want 2", g.Version()-v)
	}

	terms := g.TermCount()
	b3 := g.NewBatch()
	b3.Remove(tr("never", "seen", "terms"))
	if n := b3.Commit(); n != 0 {
		t.Fatalf("removal of unknown triple committed %d ops", n)
	}
	if g.TermCount() != terms {
		t.Fatal("batched removal of unknown terms grew the dictionary")
	}

	// reuse after commit
	b3.Add(tr("r", "r", "r"))
	if n := b3.Commit(); n != 1 || !g.Has(tr("r", "r", "r")) {
		t.Fatalf("reused batch commit = %d", n)
	}
}

// TestRecyclingPreservesSnapshots is the node-recycling safety pin: hold
// snapshots from before and between batches, run a churn storm whose
// add-then-remove pairs are exactly what feeds the per-shard free lists,
// and require every held snapshot to replay byte-for-byte afterwards. Any
// node reachable from a published state that got recycled or edited in
// place would corrupt one of the snapshots. Run with -race, concurrent
// readers included, at shards 1, 4 and 16.
func TestRecyclingPreservesSnapshots(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(shards)))
			g := NewGraphSharded(shards)
			for i := 0; i < 1500; i++ {
				g.Add(randTriple(rng))
			}

			type capture struct {
				snap *Snapshot
				want []Triple
			}
			var caps []capture
			hold := func() {
				s := g.Snapshot()
				caps = append(caps, capture{snap: s, want: s.Triples()})
			}
			hold()

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						n := 0
						g.Match(nil, nil, nil, func(Triple) bool { n++; return n < 200 })
						_ = g.Snapshot().Len()
						_ = g.Stats()
						p := IRI(fmt.Sprintf("http://e/p%d", rr.Intn(13)))
						_, _ = g.PredStats(p)
					}
				}(int64(r))
			}

			// churn storm: batches that add fresh triples and remove many of
			// them again within the same batch (born-and-discarded nodes →
			// free list), plus removals of pre-existing triples
			for round := 0; round < 30; round++ {
				b := g.NewBatch()
				fresh := make([]Triple, 0, 64)
				for i := 0; i < 64; i++ {
					tr := Triple{
						S: IRI(fmt.Sprintf("http://e/storm-s%d-%d", round, i%16)),
						P: IRI(fmt.Sprintf("http://e/p%d", i%13)),
						O: IRI(fmt.Sprintf("http://e/storm-o%d", i)),
					}
					fresh = append(fresh, tr)
					b.Add(tr)
				}
				for _, tr := range fresh[:48] {
					b.Remove(tr) // same-batch discard: exercises recycling
				}
				for i := 0; i < 16; i++ {
					b.Remove(randTriple(rng))
				}
				b.Commit()
				if round%10 == 0 {
					hold()
				}
			}
			close(stop)
			wg.Wait()

			for i, c := range caps {
				got := c.snap.Triples()
				if !reflect.DeepEqual(got, c.want) {
					t.Fatalf("snapshot %d changed after recycling storm: %d triples now vs %d at capture",
						i, len(got), len(c.want))
				}
			}
		})
	}
}

// TestBatchFreeListReuse pins that recycling actually happens: a batch
// that creates and discards subtrees leaves spare nodes on the shard free
// lists, and a follow-up batch consumes them.
func TestBatchFreeListReuse(t *testing.T) {
	g := NewGraphSharded(1)
	b := g.NewBatch()
	for i := 0; i < 200; i++ {
		b.Add(tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	for i := 0; i < 200; i++ {
		b.Remove(tr(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)))
	}
	b.Commit()
	sh := g.shards[0]
	free := len(sh.rec.idx.free) + len(sh.rec.pos.free) + len(sh.rec.pairs.free) + len(sh.rec.set.free)
	if free == 0 {
		t.Fatal("batch that discarded every subtree it built recycled nothing")
	}
	if g.Len() != 0 || g.Version() != 400 {
		t.Fatalf("unexpected end state: len=%d version=%d", g.Len(), g.Version())
	}
}

// TestLargeBatchAddThenRemove pins the parallel dictionary resolution
// against the batch ordering contract: in a batch large enough to resolve
// across internOps workers (≥ internParallelThreshold ops), a Remove whose
// terms are first interned by an earlier Add in the same batch must still
// apply. With removal lookups resolved eagerly on a racing worker chunk,
// the lookup could miss the in-flight intern and wrongly skip the removal;
// they must resolve only after every intern of the batch has completed.
func TestLargeBatchAddThenRemove(t *testing.T) {
	// force the parallel internOps branch even on single-CPU machines —
	// the sequential fallback never had the bug this test pins
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	n := internParallelThreshold * 2
	g := NewGraphSharded(8)
	b := g.NewBatch()
	mk := func(i int) Triple {
		return tr(fmt.Sprintf("fresh-s%d", i), fmt.Sprintf("p%d", i%7), fmt.Sprintf("fresh-o%d", i))
	}
	for i := 0; i < n; i++ {
		b.Add(mk(i))
	}
	for i := 0; i < n; i++ {
		b.Remove(mk(i))
	}
	if got := b.Commit(); got != 2*n {
		t.Fatalf("Commit = %d effective ops, want %d (removal of a same-batch add skipped?)", got, 2*n)
	}
	if g.Len() != 0 {
		t.Fatalf("len = %d, want 0: add-then-remove in one large batch must leave every triple absent", g.Len())
	}
	if st := g.Stats(); st != (Stats{}) {
		t.Fatalf("stats = %+v, want all zero", st)
	}
}

// TestRemoveRacesAddRefcount hammers the end-to-end shape of the refcount
// race: a remover spinning on a triple whose object term is fresh each
// round can win the refcount update against the adder that just published
// the triple. Must not panic (decRef grows its stripe) and the statistics
// must net out exactly. Run with -race.
func TestRemoveRacesAddRefcount(t *testing.T) {
	g := NewGraphSharded(4)
	for round := 0; round < 300; round++ {
		tri := tr(fmt.Sprintf("race-s%d", round), "race-p", fmt.Sprintf("race-fresh-o%d", round))
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			g.Add(tri)
		}()
		go func() {
			defer wg.Done()
			for !g.Remove(tri) {
			}
		}()
		wg.Wait()
	}
	if g.Len() != 0 {
		t.Fatalf("len = %d after add/remove rounds, want 0", g.Len())
	}
	if st := g.Stats(); st != (Stats{}) {
		t.Fatalf("stats did not net out: %+v", st)
	}
}

// TestCommitScratchPooling pins the pooled commit working set: a released
// scratch comes back on the next acquisition with its op-indexed state
// zeroed and its per-shard op lists empty, so no state leaks between
// commits, and steady-state commits stop allocating the O(shard-count)
// slices afresh.
func TestCommitScratchPooling(t *testing.T) {
	g := NewGraphSharded(4)
	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so one put/get round can miss; retry until the released scratch
	// comes back (the odds of sustained misses are negligible).
	var sc, got *commitScratch
	for attempt := 0; attempt < 64; attempt++ {
		sc = g.getScratch(8, 4)
		// dirty it the way a commit does
		sc.skip[3] = true
		sc.effect[5] = 1
		sc.spFlag[0] = true
		sc.subOps[2] = append(sc.subOps[2], 7)
		sc.predOps[2] = append(sc.predOps[2], 9)
		sc.touched = append(sc.touched, 2)
		sc.cs[1].changed = true
		g.putScratch(sc)
		if got = g.getScratch(8, 4); got == sc {
			break
		}
	}
	if got != sc {
		t.Fatal("pool did not return the released scratch")
	}
	for i := 0; i < 8; i++ {
		if got.skip[i] || got.effect[i] != 0 || got.spFlag[i] {
			t.Fatalf("op-indexed state not cleared at %d: skip=%v effect=%d spFlag=%v",
				i, got.skip[i], got.effect[i], got.spFlag[i])
		}
	}
	for i := 0; i < 4; i++ {
		if len(got.subOps[i]) != 0 || len(got.predOps[i]) != 0 {
			t.Fatalf("shard %d op lists not emptied: sub=%d pred=%d",
				i, len(got.subOps[i]), len(got.predOps[i]))
		}
		if got.cs[i].changed || got.cs[i].base != nil {
			t.Fatalf("shard %d commitShard not zeroed", i)
		}
	}
	if len(got.touched) != 0 {
		t.Fatalf("touched not reset: %v", got.touched)
	}
	g.putScratch(got)

	// end to end: interleaved tiny commits reuse the scratch and net out
	for i := 0; i < 50; i++ {
		b := g.NewBatch()
		b.Add(tr(fmt.Sprintf("ps%d", i), "pp", "po"))
		b.Remove(tr(fmt.Sprintf("ps%d", i), "pp", "po"))
		if eff := b.Commit(); eff != 2 {
			t.Fatalf("commit %d: %d effective ops, want 2", i, eff)
		}
	}
	if g.Len() != 0 {
		t.Fatalf("len = %d after paired add/remove commits, want 0", g.Len())
	}
}

// TestFreeListAdaptiveSizing pins the adaptive bound on the shard node
// free lists (nodePool.adapt): a batch churny enough to overflow a list
// doubles its bound — the refused recycles would have been next batch's
// heap allocations — and a run of small batches shrinks an oversized
// bound back down, releasing the pinned surplus.
func TestFreeListAdaptiveSizing(t *testing.T) {
	g := NewGraphSharded(1)
	pool := &g.shards[0].rec.set
	if pool.capMax() != poolFreeMax {
		t.Fatalf("fresh pool bound = %d, want %d", pool.capMax(), poolFreeMax)
	}

	// churn far past the default bound: every triple grows a singleton
	// subtree and the removals hand all of them back
	b := g.NewBatch()
	for i := 0; i < 3000; i++ {
		b.Add(tr(fmt.Sprintf("as%d", i), "p", fmt.Sprintf("ao%d", i)))
	}
	for i := 0; i < 3000; i++ {
		b.Remove(tr(fmt.Sprintf("as%d", i), "p", fmt.Sprintf("ao%d", i)))
	}
	b.Commit()
	grown := pool.capMax()
	if grown <= poolFreeMax {
		t.Fatalf("bound after overflowing churn = %d, want > %d", grown, poolFreeMax)
	}

	// a long run of tiny batches: demand is a handful of nodes, so the
	// bound must halve per commit down to the floor and trim the list
	for r := 0; r < 40; r++ {
		b := g.NewBatch()
		b.Add(tr("s", "q", fmt.Sprintf("t%d", r)))
		b.Remove(tr("s", "q", fmt.Sprintf("t%d", r)))
		b.Commit()
	}
	if got := pool.capMax(); got != poolFreeMin {
		t.Fatalf("bound after tiny-batch run = %d, want %d", got, poolFreeMin)
	}
	if len(pool.free) > poolFreeMin {
		t.Fatalf("free list holds %d nodes, want <= %d after shrink", len(pool.free), poolFreeMin)
	}

	// the graph itself must be unperturbed by all the churn
	if g.Len() != 0 {
		t.Fatalf("len = %d, want 0", g.Len())
	}
}
