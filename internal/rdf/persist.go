package rdf

// Op is one effective write of a committed batch: an insertion of a
// previously absent triple or a removal of a previously present one.
// No-op writes (duplicate adds, removals of absent triples) never appear
// in a CommitRecord — replaying the record reproduces exactly the state
// transition the commit made.
type Op struct {
	// Del marks a removal; false is an insertion.
	Del bool
	// T is the triple written.
	T Triple
}

// CommitRecord describes one committed write as the durability layer sees
// it: the effective ops in application order and the graph write epoch
// after the commit. Records are handed to the Persistence hook in strictly
// increasing epoch order (the graph serialises epoch assignment and
// LogCommit under one mutex whenever a hook is attached), so a log of
// records replays into the exact same epochs: after applying a record, the
// graph's version is exactly rec.Epoch.
type CommitRecord struct {
	// Epoch is the graph version after this commit: the version before it
	// plus len(Ops).
	Epoch uint64
	// Ops are the effective writes in application order.
	Ops []Op
}

// Persistence is the durability hook a Graph calls on its write path. The
// write-ahead log (internal/wal, wired by internal/durable) is the real
// implementation; tests substitute stubs.
//
// LogCommit is called before the commit's shard states are published,
// while the writer still holds its shard locks and the graph's persistence
// mutex: implementations must only buffer (an append to an in-memory
// segment buffer), never block on I/O, and must preserve call order —
// the call order is the epoch order, and replay depends on it. If
// LogCommit returns an error the commit is aborted: nothing is published,
// the graph's version does not advance, and the error is recorded sticky
// on the graph (PersistenceError).
//
// WaitDurable is called after the commit published and every lock was
// released, with the token LogCommit returned. It blocks until the record
// is durable per the configured fsync policy (for relaxed policies it
// returns immediately). A WaitDurable error means durability of an
// already-published commit is unknown; it is returned to CommitErr callers
// and recorded sticky.
//
// The hook is write-path only: no read, scan, snapshot or stats path ever
// calls it, which is what keeps the read surface lock-free and
// allocation-free with persistence enabled (pinned by
// TestReadPathTakesNoLocks and the snapshot-read benchmarks).
type Persistence interface {
	LogCommit(rec CommitRecord) (token uint64, err error)
	WaitDurable(token uint64) error
}

// persistBox wraps the interface value so it can live in an
// atomic.Pointer (attachment races attach-then-write sequences in tests).
type persistBox struct{ p Persistence }

// SetPersistence attaches the durability hook (nil detaches). Attach
// before concurrent writers start — typically right after recovery, before
// the graph is shared — so no in-flight commit straddles the transition.
func (g *Graph) SetPersistence(p Persistence) {
	if p == nil {
		g.persist.Store(nil)
		return
	}
	g.persistMu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[uint64]struct{})
	}
	g.persistMu.Unlock()
	g.persist.Store(&persistBox{p: p})
}

// publishDone marks a logged commit as fully published: every shard state
// carrying it has been stored. From here on, any snapshot captures it.
func (g *Graph) publishDone(box *persistBox, epoch uint64) {
	if box == nil {
		return
	}
	g.persistMu.Lock()
	delete(g.inflight, epoch)
	g.persistMu.Unlock()
}

// PublishedFloor returns the highest epoch E such that every logged
// commit with epoch ≤ E has fully published its shard states. A snapshot
// captured after this call therefore contains every such commit — it is
// the sound bound for retiring WAL records behind a checkpoint. Only
// meaningful while a Persistence hook is attached.
func (g *Graph) PublishedFloor() uint64 {
	g.persistMu.Lock()
	defer g.persistMu.Unlock()
	if len(g.inflight) == 0 {
		return g.version.Load()
	}
	min := uint64(0)
	for e := range g.inflight {
		if min == 0 || e < min {
			min = e
		}
	}
	return min - 1
}

// PersistenceError returns the first error the persistence hook reported
// on this graph's write path, or nil. Once set it never clears: a store
// whose log failed must not be trusted to be durable again.
func (g *Graph) PersistenceError() error {
	if e := g.persistErr.Load(); e != nil {
		return e.err
	}
	return nil
}

type errBox struct{ err error }

func (g *Graph) setPersistErr(err error) {
	g.persistErr.CompareAndSwap(nil, &errBox{err: err})
}

// RestoreVersion fast-forwards the graph's write epoch to v — the recovery
// path's final step, so epochs keep strictly increasing across restarts
// and a replayed graph reports exactly the Version the crashed process
// had committed. It never moves the version backwards, and it must only
// be called while no writers are running (internal/durable calls it
// before the graph is shared).
func (g *Graph) RestoreVersion(v uint64) {
	for {
		cur := g.version.Load()
		if v <= cur || g.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// logSingle is the single-write half of the write path's persistence step:
// called with the writer's shard locks held, before publication. It
// assigns the write's epoch — serialised with every other logging writer
// so the log's epoch order is the commit order — and appends the record.
// ok=false aborts the write (nothing may be published). When no hook is
// attached it degenerates to the plain epoch bump.
func (g *Graph) logSingle(del bool, t Triple) (epoch, token uint64, box *persistBox, ok bool) {
	box = g.persist.Load()
	if box == nil {
		return g.version.Add(1), 0, nil, true
	}
	g.persistMu.Lock()
	epoch = g.version.Load() + 1
	token, err := box.p.LogCommit(CommitRecord{Epoch: epoch, Ops: []Op{{Del: del, T: t}}})
	if err != nil {
		g.persistMu.Unlock()
		g.setPersistErr(err)
		return 0, 0, nil, false
	}
	g.version.Store(epoch)
	g.inflight[epoch] = struct{}{}
	g.persistMu.Unlock()
	return epoch, token, box, true
}

// awaitSingle completes a single write's durability wait outside all locks.
func (g *Graph) awaitSingle(box *persistBox, token uint64) {
	if box == nil {
		return
	}
	if err := box.p.WaitDurable(token); err != nil {
		g.setPersistErr(err)
	}
}
