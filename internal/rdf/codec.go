package rdf

// Binary codec for terms, triples and commit records — the on-disk
// vocabulary shared by the write-ahead log (internal/wal) and the snapshot
// checkpoints (internal/checkpoint). The encoding is self-delimiting and
// validated on decode: every decoder returns an error (never panics, never
// silently misreads) on truncated, bit-flipped or otherwise malformed
// input, which is what lets the recovery path treat "decode error" as
// "torn tail" with confidence. Framing integrity (lengths, checksums) is
// the storage layers' job; this codec owns the payloads.
//
// Term encoding: one tag byte — the low two bits are the Kind, bit 2 marks
// a datatype suffix, bit 3 a language-tag suffix — followed by the
// uvarint-length-prefixed value string and, per the tag bits, the datatype
// or language string. Triples are the three terms in S, P, O order. A
// commit record is its epoch, its op count, then each op as a flag byte
// (0 add, 1 remove) and a triple.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCodec wraps every decode failure of this codec, so storage layers can
// distinguish corrupt payloads from I/O errors with errors.Is.
var ErrCodec = errors.New("rdf: corrupt encoding")

const (
	tagKindMask  = 0b0011
	tagDatatype  = 0b0100
	tagLang      = 0b1000
	tagKnownBits = 0b1111
)

// maxDecodeString bounds one decoded string so a corrupt length prefix
// cannot drive an enormous allocation before the real bytes run out.
const maxDecodeString = 1 << 28

// AppendTerm appends the binary encoding of t to dst and returns the
// extended slice. Zero (invalid) terms are encodable — kind bits 0 — so
// round-tripping is total, but decoders of triple positions reject them
// through Triple.Valid checks at the record layer.
func AppendTerm(dst []byte, t Term) []byte {
	tag := byte(t.kind) & tagKindMask
	if t.datatype != "" {
		tag |= tagDatatype
	}
	if t.lang != "" {
		tag |= tagLang
	}
	dst = append(dst, tag)
	dst = appendString(dst, t.value)
	if t.datatype != "" {
		dst = appendString(dst, t.datatype)
	}
	if t.lang != "" {
		dst = appendString(dst, t.lang)
	}
	return dst
}

// DecodeTerm decodes one term from the front of b, returning the term and
// the remaining bytes.
func DecodeTerm(b []byte) (Term, []byte, error) {
	return decodeTermSeq(b)
}

// DecodeTermsShared decodes exactly count consecutive terms spanning all
// of data. The decoded terms' strings are substrings of ONE copy of data
// rather than per-field allocations — the shape checkpoint recovery
// wants, where every decoded term is retained in the dictionary anyway
// and the per-term garbage of the naive path is pure GC pressure.
func DecodeTermsShared(data []byte, count int) ([]Term, error) {
	s := string(data)
	terms := make([]Term, 0, count)
	for len(s) > 0 {
		t, rest, err := decodeTermSeq(s)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		s = rest
	}
	if len(terms) != count {
		return nil, fmt.Errorf("%w: %d terms, expected %d", ErrCodec, len(terms), count)
	}
	return terms, nil
}

// decodeTermSeq is DecodeTerm generic over the input sequence: for []byte
// every string field is copied out (the input buffer is transient); for
// string the fields are substrings sharing the input's backing array.
func decodeTermSeq[T ~string | ~[]byte](b T) (Term, T, error) {
	var zero T
	if len(b) == 0 {
		return Term{}, zero, fmt.Errorf("%w: truncated term tag", ErrCodec)
	}
	tag := b[0]
	b = b[1:]
	if tag&^byte(tagKnownBits) != 0 {
		return Term{}, zero, fmt.Errorf("%w: unknown term tag bits %#x", ErrCodec, tag)
	}
	kind := Kind(tag & tagKindMask)
	if kind > KindLiteral {
		return Term{}, zero, fmt.Errorf("%w: invalid term kind %d", ErrCodec, kind)
	}
	if kind != KindLiteral && tag&(tagDatatype|tagLang) != 0 {
		return Term{}, zero, fmt.Errorf("%w: datatype/lang bits on non-literal term", ErrCodec)
	}
	if tag&tagDatatype != 0 && tag&tagLang != 0 {
		return Term{}, zero, fmt.Errorf("%w: term with both datatype and language tag", ErrCodec)
	}
	var t Term
	t.kind = kind
	var err error
	if t.value, b, err = decodeStringSeq(b); err != nil {
		return Term{}, zero, err
	}
	if tag&tagDatatype != 0 {
		if t.datatype, b, err = decodeStringSeq(b); err != nil {
			return Term{}, zero, err
		}
		if t.datatype == "" || t.datatype == XSDString {
			// TypedLiteral would never have encoded these as a datatype
			// suffix; accepting them would let two encodings decode to
			// equal terms and break round-trip identity.
			return Term{}, zero, fmt.Errorf("%w: non-canonical datatype suffix", ErrCodec)
		}
	}
	if tag&tagLang != 0 {
		if t.lang, b, err = decodeStringSeq(b); err != nil {
			return Term{}, zero, err
		}
		if t.lang == "" {
			return Term{}, zero, fmt.Errorf("%w: empty language tag", ErrCodec)
		}
	}
	return t, b, nil
}

// AppendTriple appends the binary encoding of t to dst.
func AppendTriple(dst []byte, t Triple) []byte {
	dst = AppendTerm(dst, t.S)
	dst = AppendTerm(dst, t.P)
	return AppendTerm(dst, t.O)
}

// DecodeTriple decodes one triple from the front of b, returning the
// triple and the remaining bytes. The triple must satisfy the RDF typing
// discipline (Triple.Valid); storage layers never hold anything else, so a
// violation means corruption.
func DecodeTriple(b []byte) (Triple, []byte, error) {
	var t Triple
	var err error
	if t.S, b, err = DecodeTerm(b); err != nil {
		return Triple{}, nil, err
	}
	if t.P, b, err = DecodeTerm(b); err != nil {
		return Triple{}, nil, err
	}
	if t.O, b, err = DecodeTerm(b); err != nil {
		return Triple{}, nil, err
	}
	if !t.Valid() {
		return Triple{}, nil, fmt.Errorf("%w: triple violates RDF typing", ErrCodec)
	}
	return t, b, nil
}

// AppendBinary appends the binary encoding of the record to dst.
func (r CommitRecord) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, r.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(r.Ops)))
	for _, op := range r.Ops {
		flag := byte(0)
		if op.Del {
			flag = 1
		}
		dst = append(dst, flag)
		dst = AppendTriple(dst, op.T)
	}
	return dst
}

// DecodeCommitRecord decodes a full record payload. The whole buffer must
// be consumed: trailing bytes mean the framing length lied, which is
// corruption.
func DecodeCommitRecord(b []byte) (CommitRecord, error) {
	var r CommitRecord
	var n int
	if r.Epoch, n = binary.Uvarint(b); n <= 0 {
		return CommitRecord{}, fmt.Errorf("%w: bad record epoch", ErrCodec)
	}
	b = b[n:]
	nops, n := binary.Uvarint(b)
	if n <= 0 {
		return CommitRecord{}, fmt.Errorf("%w: bad record op count", ErrCodec)
	}
	b = b[n:]
	// Each op is at least a flag byte and three 2-byte terms; a count that
	// could not fit in the remaining bytes is rejected before it can size
	// an allocation.
	if nops > uint64(len(b)/7)+1 || nops > math.MaxInt32 {
		return CommitRecord{}, fmt.Errorf("%w: op count %d exceeds payload", ErrCodec, nops)
	}
	r.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(b) == 0 {
			return CommitRecord{}, fmt.Errorf("%w: truncated op flag", ErrCodec)
		}
		flag := b[0]
		if flag > 1 {
			return CommitRecord{}, fmt.Errorf("%w: unknown op flag %d", ErrCodec, flag)
		}
		b = b[1:]
		t, rest, err := DecodeTriple(b)
		if err != nil {
			return CommitRecord{}, err
		}
		b = rest
		r.Ops = append(r.Ops, Op{Del: flag == 1, T: t})
	}
	if len(b) != 0 {
		return CommitRecord{}, fmt.Errorf("%w: %d trailing bytes after record", ErrCodec, len(b))
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeStringSeq reads one length-prefixed string. For a []byte input
// the result is a fresh copy; for a string input it is a shared substring.
func decodeStringSeq[T ~string | ~[]byte](b T) (string, T, error) {
	var zero T
	n, w := uvarintSeq(b)
	if w <= 0 {
		return "", zero, fmt.Errorf("%w: bad string length", ErrCodec)
	}
	b = b[w:]
	if n > maxDecodeString || n > uint64(len(b)) {
		return "", zero, fmt.Errorf("%w: string length %d exceeds payload", ErrCodec, n)
	}
	return string(b[:n]), b[n:], nil
}

// uvarintSeq is binary.Uvarint over string or []byte.
func uvarintSeq[T ~string | ~[]byte](b T) (uint64, int) {
	var x uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if i == 10 {
			return 0, -(i + 1) // overflow
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, -(i + 1) // overflow
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
