package rdf

import "math/bits"

// This file implements the persistent (immutable, copy-on-write) map the
// epoch-based read path of Graph is built on: a CHAMP-style hash-array-mapped
// trie keyed by the 32-bit term ids of the dictionary. Every mutation copies
// only the O(log n) nodes on the path from the root to the touched slot and
// shares the rest of the structure, so a writer can publish the updated tree
// with a single atomic pointer store while readers keep traversing the
// previous version lock-free, forever. The key's own bits index the trie
// (5 per level), so there is no hashing and two distinct keys always
// separate within seven levels.
//
// tree is the map header: a 16-byte value embedded directly in whatever
// owns the map — a shardState for the top-level index of each permutation,
// a node's entry slot for a nested one — rather than allocated behind a
// pointer. An empty map is the zero value (nil root). This file holds the
// read surface only (get, each, len) plus the in-place slice editors; all
// mutation goes through the transient builders of transient.go, which
// enforce the ownership rule that keeps published nodes immutable.
type tree[V any] struct {
	root *tnode[V]
	size int
}

// tentry is one inline (key, value) binding of a node.
type tentry[V any] struct {
	k id
	v V
}

// tnode is one trie node. A bit set in dataMap means the chunk index holds
// an inline (key, value) entry; a bit in nodeMap means it holds a child
// subtree. No bit is ever set in both. Entries and children are stored
// compactly, ordered by chunk index (slice position = popcount of the lower
// bits of the owning bitmap). Keys and values live interleaved in one
// entries slice, so copying a node's data costs one allocation and probing
// a key touches the cache line its value is on. The ients/ikids arrays are
// the node's inline storage: the slices point into them while the node
// holds at most two entries and two children (the common case below the
// root), making a small node a single allocation, slices included.
type tnode[V any] struct {
	dataMap uint32
	nodeMap uint32
	// owner is the builder ownership token: the token of the batch that
	// created the node, 0 for none. Once that batch freezes, the token is
	// dead and the node can never be edited again; see transient.go.
	owner uint64
	ents  []tentry[V]
	kids  []*tnode[V]
	ients [2]tentry[V]
	ikids [2]*tnode[V]
}

// len returns the number of entries.
func (t *tree[V]) len() int {
	if t == nil {
		return 0
	}
	return t.size
}

// get returns the value stored under k.
func (t *tree[V]) get(k id) (V, bool) {
	var zero V
	if t == nil || t.root == nil {
		return zero, false
	}
	n := t.root
	for shift := uint(0); ; shift += 5 {
		bit := uint32(1) << ((uint32(k) >> shift) & 31)
		if n.dataMap&bit != 0 {
			e := &n.ents[bits.OnesCount32(n.dataMap&(bit-1))]
			if e.k == k {
				return e.v, true
			}
			return zero, false
		}
		if n.nodeMap&bit == 0 {
			return zero, false
		}
		n = n.kids[bits.OnesCount32(n.nodeMap&(bit-1))]
	}
}

// each calls fn for every entry until fn returns false, reporting whether
// the iteration ran to completion. The order is determined by the key bits,
// so it is stable for a given key set regardless of insertion history.
func (t *tree[V]) each(fn func(id, V) bool) bool {
	if t == nil || t.root == nil {
		return true
	}
	return t.root.each(fn)
}

func (n *tnode[V]) each(fn func(id, V) bool) bool {
	for i := range n.ents {
		if !fn(n.ents[i].k, n.ents[i].v) {
			return false
		}
	}
	for _, c := range n.kids {
		if !c.each(fn) {
			return false
		}
	}
	return true
}

// insertData, removeData, insertKid and removeKid edit a node's entry
// slices in place. They are only ever called on a node the current builder
// owns, never on a published node. An append that outgrows the inline
// storage copies out to the heap and zeroes the abandoned inline slots —
// they live as long as the node does (published states, snapshots, the
// free list) and their entries and child pointers would otherwise pin
// replaced subtree versions forever, the exact retention class the slab
// note in transient.go warns about. A removal zeroes the vacated tail slot
// for the same reason. These in-place edits are the only places live
// inline storage is ever abandoned: the copy helpers below only fill
// fresh-from-the-pool nodes, whose inline slots are already clear.
func (n *tnode[V]) insertData(bit uint32, k id, v V) {
	i := bits.OnesCount32(n.dataMap & (bit - 1))
	spill := len(n.ents) > 0 && len(n.ents) == cap(n.ents) && &n.ents[0] == &n.ients[0]
	n.ents = append(n.ents, tentry[V]{})
	if spill {
		for j := range n.ients {
			n.ients[j] = tentry[V]{}
		}
	}
	copy(n.ents[i+1:], n.ents[i:])
	n.ents[i] = tentry[V]{k: k, v: v}
	n.dataMap |= bit
}

func (n *tnode[V]) removeData(bit uint32) {
	i := bits.OnesCount32(n.dataMap & (bit - 1))
	last := len(n.ents) - 1
	copy(n.ents[i:], n.ents[i+1:])
	n.ents[last] = tentry[V]{}
	n.ents = n.ents[:last]
	n.dataMap &^= bit
}

func (n *tnode[V]) insertKid(bit uint32, child *tnode[V]) {
	j := bits.OnesCount32(n.nodeMap & (bit - 1))
	spill := len(n.kids) > 0 && len(n.kids) == cap(n.kids) && &n.kids[0] == &n.ikids[0]
	n.kids = append(n.kids, nil)
	if spill {
		for i := range n.ikids {
			n.ikids[i] = nil
		}
	}
	copy(n.kids[j+1:], n.kids[j:])
	n.kids[j] = child
	n.nodeMap |= bit
}

func (n *tnode[V]) removeKid(bit uint32) {
	j := bits.OnesCount32(n.nodeMap & (bit - 1))
	last := len(n.kids) - 1
	copy(n.kids[j:], n.kids[j+1:])
	n.kids[last] = nil
	n.kids = n.kids[:last]
	n.nodeMap &^= bit
}

// The graph indexes instantiate the tree three levels deep: an index maps
// position a to a map from position b to the set of c, where (a, b, c) is a
// permutation of (s, p, o) — the persistent analogue of the former
// map[id]map[id]map[id]struct{}. The inner headers are embedded by value
// (an ipairs entry's value IS its iset header), so navigating a level costs
// no pointer hop and updating a level allocates no header.
type (
	iset   = tree[struct{}]
	ipairs = tree[iset]
	pindex = tree[ipairs]
	posdex = tree[posEntry]
)

// posEntry is the value type of the POS index: the predicate's (o → s)
// pair map plus its incrementally maintained cardinalities. Folding the
// statistics into the index value means every write updates them on a trie
// path it already owns — there is no separate statistics tree to path-copy.
// The distinct-object count of a predicate is pairs.size, by construction.
type posEntry struct {
	pairs    ipairs
	triples  int
	subjects int
	top      topObjects
}

// topK is the capacity of the per-predicate heavy-hitter sketch.
const topK = 8

type objCount struct {
	o id
	n uint32
}

// topObjects is a fixed-capacity heavy-hitter sketch of one predicate's
// per-object triple counts, embedded by value in posEntry so every write
// maintains it on an index path it already owns. set records an object's
// new bucket size: known objects update in place (and leave at zero),
// unknown objects take a free slot or evict the smallest resident count
// when theirs is strictly larger. Bucket sizes grow one write at a time,
// so under pure insertion the sketch holds the true heaviest objects;
// after removals it is approximate (an evicted object re-enters at its
// full bucket size on its next insert).
type topObjects struct {
	n int8
	e [topK]objCount
}

func (t *topObjects) set(o id, count uint32) {
	for i := 0; i < int(t.n); i++ {
		if t.e[i].o != o {
			continue
		}
		if count == 0 {
			t.n--
			t.e[i] = t.e[t.n]
			t.e[t.n] = objCount{}
		} else {
			t.e[i].n = count
		}
		return
	}
	if count == 0 {
		return
	}
	if int(t.n) < len(t.e) {
		t.e[t.n] = objCount{o: o, n: count}
		t.n++
		return
	}
	min := 0
	for i := 1; i < len(t.e); i++ {
		if t.e[i].n < t.e[min].n {
			min = i
		}
	}
	if count > t.e[min].n {
		t.e[min] = objCount{o: o, n: count}
	}
}

// idxHas reports whether the index holds (a, b, c).
func idxHas(ix *pindex, a, b, c id) bool {
	bm, ok := ix.get(a)
	if !ok {
		return false
	}
	cs, ok := bm.get(b)
	if !ok {
		return false
	}
	_, ok = cs.get(c)
	return ok
}

// idxBucket returns the (a, b) set header by value; the zero tree when
// absent.
func idxBucket(ix *pindex, a, b id) iset {
	bm, ok := ix.get(a)
	if !ok {
		return iset{}
	}
	cs, _ := bm.get(b)
	return cs
}

// posBucket is idxBucket for the POS index: the (p, o) subject set.
func posBucket(ix *posdex, p, o id) iset {
	e, ok := ix.get(p)
	if !ok {
		return iset{}
	}
	cs, _ := e.pairs.get(o)
	return cs
}

// idxAdd and idxRemove — the triple-level mutations over these nested
// trees — live on the shardBuilder in transient.go, because every index
// mutation now happens inside a builder (single writes open a one-shot
// builder; batches keep one open per touched shard).
