package rdf

import "math/bits"

// This file implements the persistent (immutable, copy-on-write) map the
// epoch-based read path of Graph is built on: a CHAMP-style hash-array-mapped
// trie keyed by the 32-bit term ids of the dictionary. Every mutation copies
// only the O(log n) nodes on the path from the root to the touched slot and
// returns a new tree sharing the rest of the structure, so a writer can
// publish the updated tree with a single atomic pointer store while readers
// keep traversing the previous version lock-free, forever. The key's own
// bits index the trie (5 per level), so there is no hashing and two distinct
// keys always separate within seven levels.
//
// tree is the map header; a nil *tree is the empty map. All methods are
// read-only in the sense of persistence: with/without return a new header
// and never modify the receiver.
type tree[V any] struct {
	root *tnode[V]
	size int
}

// tnode is one trie node. A bit set in dataMap means the chunk index holds
// an inline (key, value) entry; a bit in nodeMap means it holds a child
// subtree. No bit is ever set in both. Entries and children are stored
// compactly, ordered by chunk index (slice position = popcount of the lower
// bits of the owning bitmap).
type tnode[V any] struct {
	dataMap uint32
	nodeMap uint32
	keys    []id
	vals    []V
	kids    []*tnode[V]
}

// len returns the number of entries.
func (t *tree[V]) len() int {
	if t == nil {
		return 0
	}
	return t.size
}

// get returns the value stored under k.
func (t *tree[V]) get(k id) (V, bool) {
	var zero V
	if t == nil {
		return zero, false
	}
	n := t.root
	for shift := uint(0); ; shift += 5 {
		bit := uint32(1) << ((uint32(k) >> shift) & 31)
		if n.dataMap&bit != 0 {
			i := bits.OnesCount32(n.dataMap & (bit - 1))
			if n.keys[i] == k {
				return n.vals[i], true
			}
			return zero, false
		}
		if n.nodeMap&bit == 0 {
			return zero, false
		}
		n = n.kids[bits.OnesCount32(n.nodeMap&(bit-1))]
	}
}

// with returns a tree with k bound to v, reporting whether k was newly
// added (false: an existing binding was replaced).
func (t *tree[V]) with(k id, v V) (*tree[V], bool) {
	if t == nil {
		bit := uint32(1) << (uint32(k) & 31)
		return &tree[V]{root: &tnode[V]{dataMap: bit, keys: []id{k}, vals: []V{v}}, size: 1}, true
	}
	root, added := t.root.with(k, v, 0)
	size := t.size
	if added {
		size++
	}
	return &tree[V]{root: root, size: size}, added
}

// without returns a tree with k removed, reporting whether it was present.
// Removing the last entry returns nil (the empty tree).
func (t *tree[V]) without(k id) (*tree[V], bool) {
	if t == nil {
		return nil, false
	}
	root, removed := t.root.without(k, 0)
	if !removed {
		return t, false
	}
	if t.size == 1 {
		return nil, true
	}
	return &tree[V]{root: root, size: t.size - 1}, true
}

// each calls fn for every entry until fn returns false, reporting whether
// the iteration ran to completion. The order is determined by the key bits,
// so it is stable for a given key set regardless of insertion history.
func (t *tree[V]) each(fn func(id, V) bool) bool {
	if t == nil {
		return true
	}
	return t.root.each(fn)
}

func (n *tnode[V]) each(fn func(id, V) bool) bool {
	for i, k := range n.keys {
		if !fn(k, n.vals[i]) {
			return false
		}
	}
	for _, c := range n.kids {
		if !c.each(fn) {
			return false
		}
	}
	return true
}

// clone returns a node with freshly copied slices, the unit of copy-on-write.
func (n *tnode[V]) clone() *tnode[V] {
	c := &tnode[V]{dataMap: n.dataMap, nodeMap: n.nodeMap}
	if len(n.keys) > 0 {
		c.keys = append([]id(nil), n.keys...)
		c.vals = append([]V(nil), n.vals...)
	}
	if len(n.kids) > 0 {
		c.kids = append([]*tnode[V](nil), n.kids...)
	}
	return c
}

func (n *tnode[V]) insertData(bit uint32, k id, v V) {
	i := bits.OnesCount32(n.dataMap & (bit - 1))
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	var zero V
	n.vals = append(n.vals, zero)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = v
	n.dataMap |= bit
}

func (n *tnode[V]) removeData(bit uint32) {
	i := bits.OnesCount32(n.dataMap & (bit - 1))
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.dataMap &^= bit
}

func (n *tnode[V]) insertKid(bit uint32, child *tnode[V]) {
	j := bits.OnesCount32(n.nodeMap & (bit - 1))
	n.kids = append(n.kids, nil)
	copy(n.kids[j+1:], n.kids[j:])
	n.kids[j] = child
	n.nodeMap |= bit
}

func (n *tnode[V]) removeKid(bit uint32) {
	j := bits.OnesCount32(n.nodeMap & (bit - 1))
	n.kids = append(n.kids[:j], n.kids[j+1:]...)
	n.nodeMap &^= bit
}

func (n *tnode[V]) with(k id, v V, shift uint) (*tnode[V], bool) {
	bit := uint32(1) << ((uint32(k) >> shift) & 31)
	switch {
	case n.dataMap&bit != 0:
		i := bits.OnesCount32(n.dataMap & (bit - 1))
		if n.keys[i] == k {
			c := n.clone()
			c.vals[i] = v
			return c, false
		}
		// two distinct keys share the chunk: push the resident entry down
		// into a fresh subtree alongside the new one
		child := mergeEntries(n.keys[i], n.vals[i], k, v, shift+5)
		c := n.clone()
		c.removeData(bit)
		c.insertKid(bit, child)
		return c, true
	case n.nodeMap&bit != 0:
		j := bits.OnesCount32(n.nodeMap & (bit - 1))
		child, added := n.kids[j].with(k, v, shift+5)
		c := n.clone()
		c.kids[j] = child
		return c, added
	default:
		c := n.clone()
		c.insertData(bit, k, v)
		return c, true
	}
}

// mergeEntries builds the minimal subtree holding two distinct keys from
// the given depth down.
func mergeEntries[V any](k1 id, v1 V, k2 id, v2 V, shift uint) *tnode[V] {
	i1 := (uint32(k1) >> shift) & 31
	i2 := (uint32(k2) >> shift) & 31
	if i1 == i2 {
		return &tnode[V]{nodeMap: 1 << i1, kids: []*tnode[V]{mergeEntries(k1, v1, k2, v2, shift+5)}}
	}
	if i1 < i2 {
		return &tnode[V]{dataMap: 1<<i1 | 1<<i2, keys: []id{k1, k2}, vals: []V{v1, v2}}
	}
	return &tnode[V]{dataMap: 1<<i1 | 1<<i2, keys: []id{k2, k1}, vals: []V{v2, v1}}
}

func (n *tnode[V]) without(k id, shift uint) (*tnode[V], bool) {
	bit := uint32(1) << ((uint32(k) >> shift) & 31)
	if n.dataMap&bit != 0 {
		i := bits.OnesCount32(n.dataMap & (bit - 1))
		if n.keys[i] != k {
			return n, false
		}
		c := n.clone()
		c.removeData(bit)
		return c, true
	}
	if n.nodeMap&bit == 0 {
		return n, false
	}
	j := bits.OnesCount32(n.nodeMap & (bit - 1))
	child, removed := n.kids[j].without(k, shift+5)
	if !removed {
		return n, false
	}
	c := n.clone()
	switch {
	case child.nodeMap == 0 && len(child.keys) == 0:
		c.removeKid(bit)
	case child.nodeMap == 0 && len(child.keys) == 1:
		// the subtree shrank to one inline entry: pull it up
		c.removeKid(bit)
		c.insertData(bit, child.keys[0], child.vals[0])
	default:
		c.kids[j] = child
	}
	return c, true
}

// The graph indexes instantiate the tree three levels deep: an index maps
// position a to a map from position b to the set of c, where (a, b, c) is a
// permutation of (s, p, o) — the persistent analogue of the former
// map[id]map[id]map[id]struct{}.
type (
	iset   = tree[struct{}]
	ipairs = tree[*iset]
	pindex = tree[*ipairs]
)

// idxHas reports whether the index holds (a, b, c).
func idxHas(ix *pindex, a, b, c id) bool {
	bm, ok := ix.get(a)
	if !ok {
		return false
	}
	cs, ok := bm.get(b)
	if !ok {
		return false
	}
	_, ok = cs.get(c)
	return ok
}

// idxBucket returns the (a, b) set, nil when absent.
func idxBucket(ix *pindex, a, b id) *iset {
	bm, ok := ix.get(a)
	if !ok {
		return nil
	}
	cs, _ := bm.get(b)
	return cs
}

// idxAdd inserts (a, b, c) and reports (index, inserted, createdA,
// createdB): whether the triple was new, whether its a-bucket was created,
// and whether its (a, b) bucket was created. The bucket signals drive the
// incremental distinct counts, exactly like the mutable index used to.
func idxAdd(ix *pindex, a, b, c id) (*pindex, bool, bool, bool) {
	bm, _ := ix.get(a)
	var cs *iset
	if bm != nil {
		cs, _ = bm.get(b)
	}
	cs2, added := cs.with(c, struct{}{})
	if !added {
		return ix, false, false, false
	}
	bm2, _ := bm.with(b, cs2)
	ix2, _ := ix.with(a, bm2)
	return ix2, true, bm == nil, cs == nil
}

// idxRemove deletes (a, b, c) and reports (index, removed, droppedA,
// droppedB), mirroring idxAdd.
func idxRemove(ix *pindex, a, b, c id) (*pindex, bool, bool, bool) {
	bm, ok := ix.get(a)
	if !ok {
		return ix, false, false, false
	}
	cs, ok := bm.get(b)
	if !ok {
		return ix, false, false, false
	}
	cs2, removed := cs.without(c)
	if !removed {
		return ix, false, false, false
	}
	if cs2 != nil {
		bm2, _ := bm.with(b, cs2)
		ix2, _ := ix.with(a, bm2)
		return ix2, true, false, false
	}
	bm2, _ := bm.without(b)
	if bm2 != nil {
		ix2, _ := ix.with(a, bm2)
		return ix2, true, false, true
	}
	ix2, _ := ix.without(a)
	return ix2, true, true, true
}
