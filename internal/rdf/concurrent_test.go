package rdf

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// randTriple draws from a small universe so concurrent writers collide on
// terms, shards and whole triples.
func randTriple(rng *rand.Rand) Triple {
	return Triple{
		S: IRI(fmt.Sprintf("http://e/s%d", rng.Intn(97))),
		P: IRI(fmt.Sprintf("http://e/p%d", rng.Intn(13))),
		O: IRI(fmt.Sprintf("http://e/o%d", rng.Intn(61))),
	}
}

// TestConcurrentAddMatchStats hammers a sharded graph with parallel
// writers, readers and stat readers — the shape `go test -race` is meant to
// catch regressions in. Writers insert disjoint slices of one triple set so
// the final contents are known exactly.
func TestConcurrentAddMatchStats(t *testing.T) {
	const perWorker = 400
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	rng := rand.New(rand.NewSource(1))
	all := make([]Triple, workers*perWorker)
	for i := range all {
		all[i] = randTriple(rng)
	}
	want := NewGraphSharded(1)
	want.AddAll(all)

	g := NewGraphSharded(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// readers: Match on every access path plus Stats/PredStats/Has, racing
	// the writers
	p0 := IRI("http://e/p0")
	o0 := IRI("http://e/o0")
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				g.Match(nil, &p0, nil, func(Triple) bool { n++; return true })
				g.Match(nil, nil, &o0, func(Triple) bool { n++; return true })
				_ = g.Stats()
				_, _ = g.PredStats(p0)
				_ = g.Has(Triple{S: IRI("http://e/s0"), P: p0, O: o0})
				_ = g.MatchCount(nil, &p0, nil)
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(chunk []Triple) {
			defer writers.Done()
			for _, tr := range chunk {
				g.Add(tr)
			}
		}(all[w*perWorker : (w+1)*perWorker])
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if !g.Equal(want) {
		t.Fatalf("concurrent load: %d triples, want %d", g.Len(), want.Len())
	}
	if gs, ws := g.Stats(), want.Stats(); gs != ws {
		t.Fatalf("stats after concurrent load = %+v, want %+v", gs, ws)
	}
}

// TestConcurrentAddRemove races writers and removers over a shared triple
// universe; the reference answer is the same operation sequence applied
// serially per worker (each worker owns a disjoint key range, so the final
// state is deterministic).
func TestConcurrentAddRemove(t *testing.T) {
	const ops = 600
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	type op struct {
		add bool
		t   Triple
	}
	plans := make([][]op, workers)
	for w := range plans {
		rng := rand.New(rand.NewSource(int64(w)))
		plans[w] = make([]op, ops)
		for i := range plans[w] {
			// subjects are namespaced per worker so workers never undo each
			// other's operations
			plans[w][i] = op{
				add: rng.Intn(3) != 0,
				t: Triple{
					S: IRI(fmt.Sprintf("http://e/w%d-s%d", w, rng.Intn(20))),
					P: IRI(fmt.Sprintf("http://e/p%d", rng.Intn(5))),
					O: IRI(fmt.Sprintf("http://e/o%d", rng.Intn(20))),
				},
			}
		}
	}
	want := NewGraphSharded(1)
	for _, pl := range plans {
		for _, o := range pl {
			if o.add {
				want.Add(o.t)
			} else {
				want.Remove(o.t)
			}
		}
	}
	g := NewGraphSharded(16)
	var wg sync.WaitGroup
	for _, pl := range plans {
		wg.Add(1)
		go func(pl []op) {
			defer wg.Done()
			for _, o := range pl {
				if o.add {
					g.Add(o.t)
				} else {
					g.Remove(o.t)
				}
			}
		}(pl)
	}
	wg.Wait()
	if !g.Equal(want) {
		t.Fatalf("concurrent add/remove: %d triples, want %d", g.Len(), want.Len())
	}
	if gs, ws := g.Stats(), want.Stats(); gs != ws {
		t.Fatalf("stats = %+v, want %+v", gs, ws)
	}
}

// TestShardCountsEquivalent is the sharding property: the same triples
// loaded into 1-, 4- and 16-shard graphs produce Equal graphs with
// identical statistics, match counts and sorted triple lists.
func TestShardCountsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := make([]Triple, 3000)
	for i := range ts {
		ts[i] = randTriple(rng)
	}
	ref := NewGraphSharded(1)
	ref.AddAll(ts)
	for _, n := range []int{4, 16} {
		g := NewGraphSharded(n)
		if got := g.ShardCount(); got != n {
			t.Fatalf("ShardCount = %d, want %d", got, n)
		}
		g.AddAll(ts)
		if !g.Equal(ref) || !ref.Equal(g) {
			t.Fatalf("%d-shard graph differs from 1-shard graph", n)
		}
		if gs, rs := g.Stats(), ref.Stats(); gs != rs {
			t.Fatalf("%d-shard stats = %+v, want %+v", n, gs, rs)
		}
		for p := 0; p < 13; p++ {
			pt := IRI(fmt.Sprintf("http://e/p%d", p))
			gp, gok := g.PredStats(pt)
			rp, rok := ref.PredStats(pt)
			if gok != rok || gp != rp {
				t.Fatalf("%d-shard PredStats(p%d) = %+v,%v want %+v,%v", n, p, gp, gok, rp, rok)
			}
		}
		gt, rt := g.Triples(), ref.Triples()
		for i := range gt {
			if gt[i] != rt[i] {
				t.Fatalf("%d-shard Triples()[%d] = %v, want %v", n, i, gt[i], rt[i])
			}
		}
		// fan-out partition property: MatchShard unions to Match with no
		// overlap, on a cross-shard access path (object-only)
		o := IRI("http://e/o1")
		whole := 0
		g.Match(nil, nil, &o, func(Triple) bool { whole++; return true })
		parts := 0
		for i := 0; i < g.ShardCount(); i++ {
			g.MatchShard(i, nil, nil, &o, func(Triple) bool { parts++; return true })
		}
		if whole != parts {
			t.Fatalf("%d-shard MatchShard union = %d matches, Match = %d", n, parts, whole)
		}
	}
}

// TestParallelAddAll checks the adaptive parallel bulk load against serial
// insertion: same added-count, same graph.
func TestParallelAddAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := make([]Triple, 3*parallelAddThreshold)
	for i := range ts {
		ts[i] = randTriple(rng)
	}
	serial := NewGraphSharded(1)
	wantAdded := 0
	for _, tr := range ts {
		if serial.Add(tr) {
			wantAdded++
		}
	}
	g := NewGraphSharded(8)
	if got := g.AddAll(ts); got != wantAdded {
		t.Fatalf("AddAll added %d, want %d", got, wantAdded)
	}
	if !g.Equal(serial) {
		t.Fatal("parallel AddAll result differs from serial insertion")
	}
	// a second bulk load of the same triples adds nothing
	if got := g.AddAll(ts); got != 0 {
		t.Fatalf("re-AddAll added %d, want 0", got)
	}
}

// TestShardCountDefaults pins the rounding/clamping of shard counts and the
// default override used by the -shards command flags.
func TestShardCountDefaults(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}, {1 << 20, maxShards},
	} {
		if got := NewGraphSharded(tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewGraphSharded(%d).ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
	defer SetDefaultShardCount(0)
	SetDefaultShardCount(3)
	if got := DefaultShardCount(); got != 4 {
		t.Errorf("DefaultShardCount after SetDefaultShardCount(3) = %d, want 4", got)
	}
	if got := NewGraph().ShardCount(); got != 4 {
		t.Errorf("NewGraph().ShardCount() = %d, want 4", got)
	}
	SetDefaultShardCount(0)
	if got := NewGraph().ShardCount(); got != ceilPow2(runtime.GOMAXPROCS(0)) {
		t.Errorf("automatic shard count = %d", got)
	}
}

// TestGraphIDAndVersion: identities are unique; versions count mutations.
func TestGraphIDAndVersion(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	if a.ID() == b.ID() {
		t.Error("graph IDs not unique")
	}
	v0 := a.Version()
	a.Add(tr("a", "p", "b"))
	a.Add(tr("a", "p", "b")) // duplicate: no version bump
	a.Remove(tr("a", "p", "b"))
	if got := a.Version() - v0; got != 2 {
		t.Errorf("version delta = %d, want 2 (duplicate add must not bump)", got)
	}
}
