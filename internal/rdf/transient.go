package rdf

import (
	"math/bits"
	"sync/atomic"
)

// This file is the write path of the store: transient builders over the
// persistent tries of tree.go.
//
// A builder is an owner token plus access to a shard's node pools. Every
// mutation routes through a builder and follows one rule: a node whose
// owner field equals the builder's token was created inside the current
// batch and is edited in place; anything else (owner 0, or a token from an
// earlier, frozen batch) is still reachable from a published shardState
// and is path-copied, exactly like a fully persistent update. Tokens come
// from a global counter and are never reused, so freezing a batch is free:
// the builder is simply dropped, its token dies, and every node it created
// becomes immutable forever — no walk, no flag-clearing pass.
//
// Tree headers carry no ownership: they are 16-byte values embedded in
// their parent (a node's entry slot for an inner tree, the shardState for a
// top-level one), so "may I edit this header" is the same question as "do
// I own the memory it sits in" — putRoot/delRoot operate on a header the
// caller owns by construction (a slot of an owned node, or a private local
// copy of a published header), and the slot discipline of putNodeSlot is
// what makes the nesting sound.
//
// Allocation discipline:
//   - a node's keys and values live interleaved in one entries slice, and
//     nodes carry inline storage for up to two entries and two children
//     (most trie nodes below the root are that small), so a path copy is
//     usually one allocation per node instead of three or four;
//   - a node that was born in the current batch and then discarded by a
//     later mutation of the same batch (a subtree collapse, an emptied
//     bucket) goes on the shard's free list and is reused, capacity and
//     all, so steady-state batched writes approach zero net allocations.
//     Recycling is gated on the owner token: nothing reachable from a
//     published shardState is ever recycled or written again;
//   - the free lists double as the per-shard scratch for single writes:
//     Add and Remove open a one-shot builder over the same pools.
//
// Deliberately absent: shared slab arenas. Dead regions of a
// pointer-bearing slab keep stale references alive transitively (each
// replaced trie path would pin the one it replaced, retaining the entire
// write history), so every node here is an individual allocation the
// collector can reclaim precisely.

// ownerTokens issues builder ownership tokens; 0 means "no owner".
var ownerTokens atomic.Uint64

func newOwner() uint64 { return ownerTokens.Add(1) }

// poolFreeMax is the starting bound of a free list. The bound adapts to
// the shard's observed batch churn between poolFreeMin and poolFreeCeil
// (see nodePool.adapt); the start value doubles as the reset point a
// fresh pool begins from.
const (
	poolFreeMax  = 1024
	poolFreeMin  = 64
	poolFreeCeil = 8192
)

// nodePool recycles the nodes of one tree instantiation for one shard.
// All access happens with the shard mutex held (by a single writer or by
// the one commit worker assigned to the shard).
type nodePool[V any] struct {
	free []*tnode[V]
	// max is the current adaptive bound of free (0 = poolFreeMax, so the
	// zero value needs no constructor). dropped counts recycles refused
	// because the list was full and served counts nodes handed out, both
	// since the last adapt; together they tell adapt whether the bound is
	// too tight or oversized for the shard's batch churn.
	max     int
	dropped int
	served  int
	// reuses counts nodes served from the free list instead of the heap.
	// Writers bump it under the shard mutex; metrics scrapes read it
	// lock-free, hence the atomic.
	reuses atomic.Int64
}

func (p *nodePool[V]) capMax() int {
	if p.max == 0 {
		return poolFreeMax
	}
	return p.max
}

func (p *nodePool[V]) node(owner uint64) *tnode[V] {
	if l := len(p.free); l > 0 {
		n := p.free[l-1]
		p.free = p.free[:l-1]
		n.owner = owner
		p.served++
		p.reuses.Add(1)
		return n
	}
	n := &tnode[V]{owner: owner}
	p.served++
	return n
}

// adapt resizes the free-list bound from the churn observed since the
// last call (one batch commit, normally): refused recycles mean the next
// batch of this size would heap-allocate what this one threw away, so the
// bound doubles; a bound several times the actual node demand is dead
// weight pinned forever, so it halves and the surplus is released to the
// collector. Called with the shard mutex held.
func (p *nodePool[V]) adapt() {
	switch {
	case p.dropped > 0:
		if next := p.capMax() * 2; next <= poolFreeCeil {
			p.max = next
		} else {
			p.max = poolFreeCeil
		}
	case p.served*4 < p.capMax() && p.capMax() > poolFreeMin:
		next := p.capMax() / 2
		if next < poolFreeMin {
			next = poolFreeMin
		}
		p.max = next
		if len(p.free) > next {
			tail := p.free[next:]
			for i := range tail {
				tail[i] = nil
			}
			p.free = p.free[:next]
		}
	}
	p.dropped = 0
	p.served = 0
}

// tb is the transient builder for one tree instantiation: the owner token
// of the batch plus the pool to draw nodes from.
type tb[V any] struct {
	owner uint64
	pool  *nodePool[V]
}

// editable returns n when the builder owns it, else an owned copy.
func (b tb[V]) editable(n *tnode[V]) *tnode[V] {
	if n.owner == b.owner {
		return n
	}
	c := b.pool.node(b.owner)
	c.dataMap, c.nodeMap = n.dataMap, n.nodeMap
	c.ents = dupEnts(c, n.ents)
	c.kids = dupKids(c, n.kids)
	return c
}

// putRoot ensures k has a slot in the tree rooted at *t — a header the
// caller owns — making the whole path to it owned, and calls fn with the
// slot, which fn may mutate in place. Reports whether the slot was newly
// created (fn then sees the zero V).
func (b tb[V]) putRoot(t *tree[V], k id, fn func(*V)) bool {
	if t.root == nil {
		n := b.leaf(k)
		t.root, t.size = n, 1
		fn(&n.ents[0].v)
		return true
	}
	root, slot, added := b.putNodeSlot(t.root, k, 0)
	t.root = root
	if added {
		t.size++
	}
	fn(slot)
	return added
}

// delRoot removes k from the tree rooted at *t (a header the caller owns),
// reporting whether it was present. Nodes born in this batch that the
// removal discards are recycled.
func (b tb[V]) delRoot(t *tree[V], k id) bool {
	if t.root == nil {
		return false
	}
	root, removed := b.delNode(t.root, k, 0)
	if !removed {
		return false
	}
	t.size--
	if t.size == 0 {
		b.recycleNode(root)
		t.root = nil
		return true
	}
	t.root = root
	return true
}

// leaf builds a single-entry node with a zero-valued slot for k.
func (b tb[V]) leaf(k id) *tnode[V] {
	n := b.pool.node(b.owner)
	n.dataMap = uint32(1) << (uint32(k) & 31)
	n.ents = fitEnts(n, n.ents, 1)
	n.ents[0] = tentry[V]{k: k}
	return n
}

// putNodeSlot is putRoot below the header: it returns the owned
// replacement for n plus the slot for k within it.
func (b tb[V]) putNodeSlot(n *tnode[V], k id, shift uint) (*tnode[V], *V, bool) {
	bit := uint32(1) << ((uint32(k) >> shift) & 31)
	switch {
	case n.dataMap&bit != 0:
		i := bits.OnesCount32(n.dataMap & (bit - 1))
		if n.ents[i].k == k {
			c := b.editable(n)
			return c, &c.ents[i].v, false
		}
		// two distinct keys share the chunk: push the resident entry down
		// into a fresh subtree alongside the new one
		child, slot := b.mergeSlot(n.ents[i], k, shift+5)
		if n.owner == b.owner {
			n.removeData(bit)
			n.insertKid(bit, child)
			return n, slot, true
		}
		j := bits.OnesCount32(n.nodeMap & (bit - 1))
		c := b.pool.node(b.owner)
		c.dataMap = n.dataMap &^ bit
		c.nodeMap = n.nodeMap | bit
		c.ents = delEntsFrom(c, n.ents, i)
		c.kids = insKidsFrom(c, n.kids, j, child)
		return c, slot, true
	case n.nodeMap&bit != 0:
		j := bits.OnesCount32(n.nodeMap & (bit - 1))
		child, slot, added := b.putNodeSlot(n.kids[j], k, shift+5)
		c := b.editable(n)
		c.kids[j] = child
		return c, slot, added
	default:
		i := bits.OnesCount32(n.dataMap & (bit - 1))
		if n.owner == b.owner {
			var zero V
			n.insertData(bit, k, zero)
			return n, &n.ents[i].v, true
		}
		c := b.pool.node(b.owner)
		c.dataMap = n.dataMap | bit
		c.nodeMap = n.nodeMap
		c.ents = insEntsFrom(c, n.ents, i, k)
		c.kids = dupKids(c, n.kids)
		return c, &c.ents[i].v, true
	}
}

// mergeSlot builds the minimal subtree holding the resident entry e1 and a
// fresh zero-valued slot for k2, returning the subtree and the slot.
func (b tb[V]) mergeSlot(e1 tentry[V], k2 id, shift uint) (*tnode[V], *V) {
	i1 := (uint32(e1.k) >> shift) & 31
	i2 := (uint32(k2) >> shift) & 31
	n := b.pool.node(b.owner)
	if i1 == i2 {
		child, slot := b.mergeSlot(e1, k2, shift+5)
		n.nodeMap = 1 << i1
		n.kids = fitKids(n, n.kids, 1)
		n.kids[0] = child
		return n, slot
	}
	n.dataMap = 1<<i1 | 1<<i2
	n.ents = fitEnts(n, n.ents, 2)
	if i1 < i2 {
		n.ents[0], n.ents[1] = e1, tentry[V]{k: k2}
		return n, &n.ents[1].v
	}
	n.ents[0], n.ents[1] = tentry[V]{k: k2}, e1
	return n, &n.ents[0].v
}

func (b tb[V]) delNode(n *tnode[V], k id, shift uint) (*tnode[V], bool) {
	bit := uint32(1) << ((uint32(k) >> shift) & 31)
	if n.dataMap&bit != 0 {
		i := bits.OnesCount32(n.dataMap & (bit - 1))
		if n.ents[i].k != k {
			return n, false
		}
		if n.owner == b.owner {
			n.removeData(bit)
			return n, true
		}
		c := b.pool.node(b.owner)
		c.dataMap = n.dataMap &^ bit
		c.nodeMap = n.nodeMap
		c.ents = delEntsFrom(c, n.ents, i)
		c.kids = dupKids(c, n.kids)
		return c, true
	}
	if n.nodeMap&bit == 0 {
		return n, false
	}
	j := bits.OnesCount32(n.nodeMap & (bit - 1))
	child, removed := b.delNode(n.kids[j], k, shift+5)
	if !removed {
		return n, false
	}
	c := b.editable(n)
	switch {
	case child.nodeMap == 0 && len(child.ents) == 0:
		c.removeKid(bit)
		b.recycleNode(child)
	case child.nodeMap == 0 && len(child.ents) == 1:
		// the subtree shrank to one inline entry: pull it up
		e0 := child.ents[0]
		c.removeKid(bit)
		c.insertData(bit, e0.k, e0.v)
		b.recycleNode(child)
	default:
		c.kids[j] = child
	}
	return c, true
}

// recycleNode returns a node to the free list — but only one born in the
// current batch. Anything older may be reachable from a published
// shardState or a snapshot and must be left for the garbage collector.
func (b tb[V]) recycleNode(n *tnode[V]) {
	if n == nil || n.owner != b.owner {
		return
	}
	if len(b.pool.free) >= b.pool.capMax() {
		b.pool.dropped++
		return
	}
	n.dataMap, n.nodeMap, n.owner = 0, 0, 0
	for i := range n.ents {
		n.ents[i] = tentry[V]{}
	}
	n.ents = n.ents[:0]
	for i := range n.kids {
		n.kids[i] = nil
	}
	n.kids = n.kids[:0]
	b.pool.free = append(b.pool.free, n)
}

// The fit helpers return a length-n slice for one of a node's entry
// arrays, in preference order: the node's existing (recycled) capacity,
// the node's inline storage, a fresh allocation. The caller fills every
// element. Inline storage is capped at its true capacity, so in-place
// appends stay inside the node and overflowing appends copy out.

func fitEnts[V any](n *tnode[V], dst []tentry[V], want int) []tentry[V] {
	if cap(dst) >= want {
		return dst[:want]
	}
	if want <= len(n.ients) {
		return n.ients[:want]
	}
	return make([]tentry[V], want)
}

func fitKids[V any](n *tnode[V], dst []*tnode[V], want int) []*tnode[V] {
	if cap(dst) >= want {
		return dst[:want]
	}
	if want <= len(n.ikids) {
		return n.ikids[:want]
	}
	return make([]*tnode[V], want)
}

// The copy helpers build a new node's entry slices in one pass. src always
// belongs to a different node than dst (editable never copies a node onto
// itself), so the copies never alias.

func dupEnts[V any](dst *tnode[V], src []tentry[V]) []tentry[V] {
	s := fitEnts(dst, dst.ents, len(src))
	copy(s, src)
	return s
}

// insEntsFrom opens a zero-valued slot for k at i (the value is filled by
// the caller through the returned slot pointer).
func insEntsFrom[V any](dst *tnode[V], src []tentry[V], i int, k id) []tentry[V] {
	s := fitEnts(dst, dst.ents, len(src)+1)
	copy(s, src[:i])
	s[i] = tentry[V]{k: k}
	copy(s[i+1:], src[i:])
	return s
}

func delEntsFrom[V any](dst *tnode[V], src []tentry[V], i int) []tentry[V] {
	s := fitEnts(dst, dst.ents, len(src)-1)
	copy(s, src[:i])
	copy(s[i:], src[i+1:])
	return s
}

func dupKids[V any](dst *tnode[V], src []*tnode[V]) []*tnode[V] {
	s := fitKids(dst, dst.kids, len(src))
	copy(s, src)
	return s
}

func insKidsFrom[V any](dst *tnode[V], src []*tnode[V], i int, kid *tnode[V]) []*tnode[V] {
	s := fitKids(dst, dst.kids, len(src)+1)
	copy(s, src[:i])
	s[i] = kid
	copy(s[i+1:], src[i:])
	return s
}

// recycler is the per-shard pool set, one pool per tree instantiation the
// shard's indexes use. Guarded by the shard mutex.
type recycler struct {
	idx   nodePool[ipairs]   // pindex nodes (spo and osp share this)
	pos   nodePool[posEntry] // posdex nodes
	pairs nodePool[iset]     // second-level pair maps
	set   nodePool[struct{}] // leaf id-sets
}

// adapt resizes all four free-list bounds from the batch that just
// committed; see nodePool.adapt. Called with the shard mutex held.
func (r *recycler) adapt() {
	r.idx.adapt()
	r.pos.adapt()
	r.pairs.adapt()
	r.set.adapt()
}

// shardBuilder is a transient view over one shard's tries: one owner token
// driving the four typed builders. A batch opens one per touched shard and
// keeps it across the whole batch; Add/Remove open a one-shot builder per
// write, which degenerates to pure path-copying (nothing is ever owned
// when every operation has a fresh token) but still recycles through the
// shard's free lists.
type shardBuilder struct {
	idx   tb[ipairs]
	pos   tb[posEntry]
	pairs tb[iset]
	set   tb[struct{}]
}

// builder opens a transient builder over the shard's pools with a fresh
// ownership token. The shard mutex must be held, and stay held until the
// states built with it are published.
func (sh *shard) builder() shardBuilder {
	o := newOwner()
	return shardBuilder{
		idx:   tb[ipairs]{owner: o, pool: &sh.rec.idx},
		pos:   tb[posEntry]{owner: o, pool: &sh.rec.pos},
		pairs: tb[iset]{owner: o, pool: &sh.rec.pairs},
		set:   tb[struct{}]{owner: o, pool: &sh.rec.set},
	}
}

// idxAdd inserts (a, b, c) into the index rooted at *ix (a header the
// caller owns) and reports (inserted, createdA, createdB): whether the
// triple was new, whether its a-bucket was created, and whether its (a, b)
// bucket was created. The bucket signals drive the incremental distinct
// counts, exactly like the fully persistent index used to. A duplicate is
// detected by a read-only probe first, so it allocates nothing and owns
// nothing.
func (sb *shardBuilder) idxAdd(ix *pindex, a, b, c id) (bool, bool, bool) {
	if bm, ok := ix.get(a); ok {
		if cs, ok := bm.get(b); ok {
			if _, dup := cs.get(c); dup {
				return false, false, false
			}
		}
	}
	var createdB bool
	createdA := sb.idx.putRoot(ix, a, func(bm *ipairs) {
		createdB = sb.pairs.putRoot(bm, b, func(cs *iset) {
			sb.set.putRoot(cs, c, func(*struct{}) {})
		})
	})
	return true, createdA, createdB
}

// idxRemove deletes (a, b, c) and reports (removed, droppedA, droppedB),
// mirroring idxAdd. Buckets emptied by the removal are unlinked, and their
// nodes are recycled when this batch created them.
func (sb *shardBuilder) idxRemove(ix *pindex, a, b, c id) (bool, bool, bool) {
	bm, ok := ix.get(a)
	if !ok {
		return false, false, false
	}
	cs, ok := bm.get(b)
	if !ok {
		return false, false, false
	}
	if _, ok := cs.get(c); !ok {
		return false, false, false
	}
	switch {
	case cs.size > 1:
		sb.idx.putRoot(ix, a, func(bm *ipairs) {
			sb.pairs.putRoot(bm, b, func(cs *iset) {
				sb.set.delRoot(cs, c)
			})
		})
		return true, false, false
	case bm.size > 1:
		// the (a, b) bucket empties: unlink it and recycle its last node
		sb.idx.putRoot(ix, a, func(bm *ipairs) {
			sb.pairs.delRoot(bm, b)
		})
		sb.set.recycleNode(cs.root)
		return true, false, true
	default:
		// the whole a-bucket empties
		sb.idx.delRoot(ix, a)
		sb.set.recycleNode(cs.root)
		sb.pairs.recycleNode(bm.root)
		return true, true, true
	}
}

// posAdd inserts (p, o, s) into the POS index and maintains the
// predicate's statistics in the same pass (the path is already owned).
// The caller guarantees the triple is new — the SPO index decided that —
// and passes newSP, SPO's (s, p)-bucket-creation signal, as the
// distinct-subject increment. Reports whether p is new to the index.
func (sb *shardBuilder) posAdd(ix *posdex, p, o, s id, newSP bool) bool {
	return sb.pos.putRoot(ix, p, func(e *posEntry) {
		e.triples++
		if newSP {
			e.subjects++
		}
		var n uint32
		sb.pairs.putRoot(&e.pairs, o, func(cs *iset) {
			sb.set.putRoot(cs, s, func(*struct{}) {})
			n = uint32(cs.size)
		})
		e.top.set(o, n)
	})
}

// posRemove deletes (p, o, s), mirroring posAdd: the caller guarantees
// presence and passes goneSP, SPO's bucket-drop signal. Reports whether p
// left the index.
func (sb *shardBuilder) posRemove(ix *posdex, p, o, s id, goneSP bool) bool {
	e, _ := ix.get(p)
	cs, _ := e.pairs.get(o)
	if e.triples == 1 {
		// the predicate's last triple: unlink its whole entry
		sb.pos.delRoot(ix, p)
		sb.set.recycleNode(cs.root)
		sb.pairs.recycleNode(e.pairs.root)
		return true
	}
	sb.pos.putRoot(ix, p, func(e *posEntry) {
		e.triples--
		if goneSP {
			e.subjects--
		}
		if cs.size > 1 {
			sb.pairs.putRoot(&e.pairs, o, func(cs *iset) {
				sb.set.delRoot(cs, s)
			})
		} else {
			sb.pairs.delRoot(&e.pairs, o)
			sb.set.recycleNode(cs.root)
		}
		e.top.set(o, uint32(cs.size-1))
	})
	return false
}
