package rdf

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch accumulates writes and applies them as one transaction-like unit:
// per shard, the whole batch costs one transient build over the current
// state, one frozen shardState, one atomic publication and one epoch
// stamp, instead of a full path copy and republication per triple.
//
// Until Commit begins publishing, nothing the batch holds is observable:
// readers and snapshots keep seeing the pre-batch states, so a Snapshot
// taken while the batch accumulates never contains any of its triples.
// Commit publishes each touched shard exactly once — a shard flips from
// none-of-the-batch to all-of-the-batch in a single atomic store. Across
// shards the publication is a short sequence of such stores, so a reader
// racing Commit itself can observe some shards post-batch and others
// pre-batch: the same per-shard guarantee every concurrent write in this
// store has always had, just with batch granularity. Version advances by
// one per effective write (the batch is stamped with its effective op
// count), preserving the one-bump-per-successful-Add/Remove contract that
// epoch consumers rely on.
//
// Ordering: ops apply in the order they were enqueued. Two ops on the same
// triple share both partitions, so "Add then Remove of t in one batch"
// leaves t absent, counts two effective writes, and recycles the trie
// nodes the Add built (they were born and discarded inside the batch).
//
// A Batch is not safe for concurrent use; committed batches reset and may
// be reused. Concurrent Commits of different batches are safe (shard locks
// are taken in ascending order, the same discipline single writes use).
type Batch struct {
	g   *Graph
	ops []Triple
	// del marks removal ops; nil while the batch is add-only (the common
	// case — bulk loads, chase rounds — pays nothing for the capability).
	del []bool
}

// NewBatch opens an empty write batch against the graph.
func (g *Graph) NewBatch() *Batch { return &Batch{g: g} }

// Add enqueues an insertion.
func (b *Batch) Add(t Triple) {
	b.ops = append(b.ops, t)
	if b.del != nil {
		b.del = append(b.del, false)
	}
}

// Remove enqueues a removal.
func (b *Batch) Remove(t Triple) {
	if b.del == nil {
		b.del = make([]bool, len(b.ops), len(b.ops)+1)
	}
	b.ops = append(b.ops, t)
	b.del = append(b.del, true)
}

// Len returns the number of enqueued ops.
func (b *Batch) Len() int { return len(b.ops) }

// Commit applies the batch and returns the number of effective writes
// (insertions of absent triples plus removals of present ones). The batch
// is reset for reuse. On a graph with a Persistence hook, a logging
// failure aborts the commit (0 effective writes, nothing published) and
// is retrievable via CommitErr or Graph.PersistenceError.
func (b *Batch) Commit() int {
	n, _, _ := b.commit(false)
	return n
}

// CommitErr is Commit surfacing the persistence outcome: a LogCommit
// failure (commit aborted, nothing published) or a WaitDurable failure
// (commit published but durability unknown). Callers that acknowledge
// writes to clients — rpsd, the crash harness — use this form; graphs
// without a Persistence hook never return an error.
func (b *Batch) CommitErr() (int, error) {
	n, _, err := b.commit(false)
	return n, err
}

// CommitAdded is Commit returning the triples whose insertion took effect,
// in op order — the shape work-list-driven callers (the chase) need. A
// triple added and later removed by the same batch is still reported: the
// add took effect when it applied.
func (b *Batch) CommitAdded() []Triple {
	_, added, _ := b.commit(true)
	return added
}

// commitShard is the per-shard scratch of one commit: the builder and the
// next state being built (a private value copy of the base state whose
// headers the two phases mutate in place).
type commitShard struct {
	base *shardState
	sb   shardBuilder
	next shardState

	dTriples     int // subject-partition triple delta
	dSubj, dPred int // distinct subject/predicate deltas
	changed      bool
}

// commitScratch is the working set of one commit whose size is O(ops) +
// O(shard-count). It is pooled per graph: the delta chase commits many
// tiny batches, and without pooling every one of them paid a fresh
// O(shard-count) set of allocations regardless of how few shards it
// actually touched.
type commitScratch struct {
	ids     []tripleID
	skip    []bool
	effect  []int8
	spFlag  []bool
	subOps  [][]int32
	predOps [][]int32
	touched []int
	cs      []commitShard
}

// sized returns s resized to n, reusing capacity when possible. The
// returned slice may hold stale data; callers clear what they read before
// writing.
func sized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// getScratch returns a scratch sized for nOps ops over nsh shards with the
// op-indexed state zeroed and per-shard op lists emptied.
func (g *Graph) getScratch(nOps, nsh int) *commitScratch {
	sc, _ := g.scratch.Get().(*commitScratch)
	if sc == nil {
		sc = &commitScratch{}
	}
	sc.ids = sized(sc.ids, nOps)
	sc.skip = sized(sc.skip, nOps)
	sc.effect = sized(sc.effect, nOps)
	sc.spFlag = sized(sc.spFlag, nOps)
	clear(sc.skip)
	clear(sc.effect)
	clear(sc.spFlag)
	sc.subOps = sized(sc.subOps, nsh)
	sc.predOps = sized(sc.predOps, nsh)
	sc.touched = sc.touched[:0]
	sc.cs = sized(sc.cs, nsh)
	return sc
}

// putScratch returns a scratch to the pool. The commitShard entries are
// zeroed so the pool never pins published shard states or builder pools
// between commits, and the per-shard op lists of the shards this commit
// touched are truncated (untouched entries are already empty).
func (g *Graph) putScratch(sc *commitScratch) {
	for _, si := range sc.touched {
		sc.subOps[si] = sc.subOps[si][:0]
		sc.predOps[si] = sc.predOps[si][:0]
	}
	clear(sc.cs)
	g.scratch.Put(sc)
}

func (b *Batch) commit(wantAdded bool) (int, []Triple, error) {
	g := b.g
	ops, del := b.ops, b.del
	if len(ops) == 0 {
		return 0, nil, nil
	}
	b.ops, b.del = nil, nil
	// isDel stays nil for add-only batches, letting the dictionary phase
	// skip removal handling outright.
	var isDel func(i int) bool
	if del != nil {
		isDel = func(i int) bool { return del[i] }
	}

	nsh := len(g.shards)
	sc := g.getScratch(len(ops), nsh)
	defer g.putScratch(sc)

	// Resolve the dictionary first (its stripes have their own locks):
	// insertions intern, removals only look up — a removal of unknown
	// terms is a no-op and must not grow the dictionary.
	ids := sc.ids
	skip := sc.skip
	g.dict.internOps(ops, isDel, ids, skip)

	// Group op indexes by owning shard, preserving op order: the subject
	// partition (spo/osp) and the predicate partition (pos/pred) of an op
	// may live in different shards.
	subOps := sc.subOps
	predOps := sc.predOps
	for k := range ops {
		if skip[k] {
			continue
		}
		si := uint32(ids[k].s) & g.mask
		pi := uint32(ids[k].p) & g.mask
		subOps[si] = append(subOps[si], int32(k))
		predOps[pi] = append(predOps[pi], int32(k))
	}
	touched := sc.touched
	for i := 0; i < nsh; i++ {
		if len(subOps[i]) > 0 || len(predOps[i]) > 0 {
			touched = append(touched, i)
		}
	}
	sc.touched = touched // putScratch truncates these shards' op lists
	if len(touched) == 0 {
		return 0, nil, nil
	}

	// Lock every touched shard in ascending index order (the discipline
	// all writers share) and hold the whole set until publication: the
	// transient builds derive from the states loaded here, and a
	// concurrent writer publishing in between would be clobbered.
	cs := sc.cs
	for _, si := range touched {
		sh := g.shards[si]
		sh.mu.Lock()
		st := &cs[si]
		st.base = sh.state.Load()
		st.sb = sh.builder()
		st.next = *st.base
	}

	// effect records what each op did (+1 added, -1 removed, 0 no-op);
	// spFlag whether it created/dropped its (s, p) bucket — computed in
	// the subject phase, consumed by the predicate phase's statistics.
	effect := sc.effect
	spFlag := sc.spFlag

	parallel := len(ops) >= parallelAddThreshold && len(touched) > 1

	// Phase 1: subject partitions. Each shard's ops apply in batch order
	// against its transient spo/osp; shards are independent, so the phase
	// fans out for large batches.
	fanOut(parallel, touched, func(si int) {
		st := &cs[si]
		for _, k := range subOps[si] {
			t := ids[k]
			if isDel == nil || !isDel(int(k)) {
				added, newS, newSP := st.sb.idxAdd(&st.next.spo, t.s, t.p, t.o)
				if !added {
					continue
				}
				st.sb.idxAdd(&st.next.osp, t.o, t.s, t.p)
				effect[k], spFlag[k] = 1, newSP
				st.dTriples++
				if newS {
					st.dSubj++
				}
			} else {
				removed, goneS, goneSP := st.sb.idxRemove(&st.next.spo, t.s, t.p, t.o)
				if !removed {
					continue
				}
				st.sb.idxRemove(&st.next.osp, t.o, t.s, t.p)
				effect[k], spFlag[k] = -1, goneSP
				st.dTriples--
				if goneS {
					st.dSubj--
				}
			}
			st.changed = true
		}
	})

	// Phase 2: predicate partitions, for the ops that took effect. The
	// barrier between the phases is what lets an op's spo shard and pos
	// shard differ while the statistics still agree.
	fanOut(parallel, touched, func(si int) {
		st := &cs[si]
		for _, k := range predOps[si] {
			if effect[k] == 0 {
				continue
			}
			t := ids[k]
			if effect[k] > 0 {
				if st.sb.posAdd(&st.next.pos, t.p, t.o, t.s, spFlag[k]) {
					st.dPred++
				}
			} else {
				if st.sb.posRemove(&st.next.pos, t.p, t.o, t.s, spFlag[k]) {
					st.dPred--
				}
			}
			st.changed = true
		}
	})

	nAdd, nDel := 0, 0
	for _, e := range effect {
		switch e {
		case 1:
			nAdd++
		case -1:
			nDel++
		}
	}
	if nAdd+nDel == 0 {
		for _, si := range touched {
			g.shards[si].mu.Unlock()
		}
		return 0, nil, nil
	}

	// Log first, then publish: with a Persistence hook attached, the
	// batch's effective ops append to the log — under persistMu, paired
	// with the epoch assignment, so log order is epoch order — before any
	// shard state becomes visible. A refused append aborts the whole
	// commit: the transient states are simply dropped, nothing published,
	// the version untouched.
	box := g.persist.Load()
	var epoch, token uint64
	if box != nil {
		rec := CommitRecord{Ops: make([]Op, 0, nAdd+nDel)}
		for k, e := range effect {
			if e != 0 {
				rec.Ops = append(rec.Ops, Op{Del: e < 0, T: ops[k]})
			}
		}
		g.persistMu.Lock()
		epoch = g.version.Load() + uint64(nAdd+nDel)
		rec.Epoch = epoch
		var logErr error
		token, logErr = box.p.LogCommit(rec)
		if logErr != nil {
			g.persistMu.Unlock()
			for _, si := range touched {
				g.shards[si].mu.Unlock()
			}
			g.setPersistErr(logErr)
			return 0, nil, logErr
		}
		g.version.Store(epoch)
		g.inflight[epoch] = struct{}{}
		g.persistMu.Unlock()
	} else {
		// Freeze and publish: one version advance for the whole batch
		// (sized by its effective op count), one atomic store per changed
		// shard. This is the instant the batch becomes visible; each shard
		// flips from none-of-the-batch to all-of-the-batch in one store.
		epoch = g.version.Add(uint64(nAdd + nDel))
	}
	for _, si := range touched {
		st := &cs[si]
		if st.changed {
			next := new(shardState)
			*next = st.next
			next.triples = st.base.triples + st.dTriples
			next.epoch = epoch
			g.shards[si].state.Store(next)
		}
		// size the shard's node free lists from this batch's churn while
		// the mutex is still held
		g.shards[si].rec.adapt()
		g.shards[si].mu.Unlock()
	}
	g.publishDone(box, epoch)

	g.size.Add(int64(nAdd - nDel))
	var dS, dP, dO int64
	for _, si := range touched {
		dS += int64(cs[si].dSubj)
		dP += int64(cs[si].dPred)
	}
	for k, e := range effect {
		switch e {
		case 1:
			if g.objects.addRef(ids[k].o) {
				dO++
			}
		case -1:
			if g.objects.decRef(ids[k].o) {
				dO--
			}
		}
	}
	if dS != 0 {
		g.distinctS.Add(dS)
	}
	if dP != 0 {
		g.distinctP.Add(dP)
	}
	if dO != 0 {
		g.distinctO.Add(dO)
	}

	var added []Triple
	if wantAdded && nAdd > 0 {
		added = make([]Triple, 0, nAdd)
		for k, e := range effect {
			if e == 1 {
				added = append(added, ops[k])
			}
		}
	}
	// The durability wait runs outside every lock: under fsync policies
	// that group-commit, many concurrent batches collapse into one fsync
	// here; under relaxed policies it returns immediately.
	var err error
	if box != nil {
		if err = box.p.WaitDurable(token); err != nil {
			g.setPersistErr(err)
		}
	}
	return nAdd + nDel, added, err
}

// fanOut runs fn(shard) for every touched shard, in parallel when the
// batch is large enough to amortise the goroutines and more than one CPU
// is available. The returned-from WaitGroup is the phase barrier.
func fanOut(parallel bool, touched []int, fn func(si int)) {
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(touched) {
		workers = len(touched)
	}
	if workers < 2 {
		for _, si := range touched {
			fn(si)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(touched) {
					return
				}
				fn(touched[i])
			}
		}()
	}
	wg.Wait()
}
