package rdf

import "sort"

// Source is the read surface shared by a live Graph and a point-in-time
// Snapshot of one. The query planner, the evaluators and the chase are
// written against it, so a whole query (or a whole chase round's read
// phase) can execute against one frozen view with no torn reads, while
// callers holding a *Graph keep working unchanged.
type Source interface {
	// ID identifies the underlying graph (a snapshot shares its graph's
	// identity, so plan-cache entries are valid across both).
	ID() uint64
	// Epoch is the write epoch the view reflects: Version for a live graph,
	// the captured version for a snapshot.
	Epoch() uint64
	// Len is the number of triples.
	Len() int
	// ShardCount is the number of index shards.
	ShardCount() int
	// Match, MatchShard and MatchCount are the wildcard scan surface; see
	// Graph for the access-path contract.
	Match(s, p, o *Term, fn func(Triple) bool)
	MatchShard(i int, s, p, o *Term, fn func(Triple) bool)
	MatchCount(s, p, o *Term) int
	// FanoutWidth reports how many shard partitions Match visits.
	FanoutWidth(s, p, o *Term) int
	// Has reports exact membership.
	Has(t Triple) bool
	// ForEach iterates every triple until fn returns false.
	ForEach(fn func(Triple) bool)
	// Stats and PredStats are the planner's cardinality inputs.
	Stats() Stats
	PredStats(p Term) (PredStats, bool)
}

var (
	_ Source = (*Graph)(nil)
	_ Source = (*Snapshot)(nil)
)

// Freeze returns a stable point-in-time view of src: the Snapshot of a live
// Graph, or src itself when it is already immutable. Callers that evaluate
// several patterns as one logical operation (a query plan, a chase round, a
// served request) freeze once and run everything against the result.
func Freeze(src Source) Source {
	if g, ok := src.(*Graph); ok {
		return g.Snapshot()
	}
	return src
}

// Snapshot is a stable, point-in-time view of a Graph: the shard states
// published at capture time. Reads never lock and later writes to the graph
// can never alter what the snapshot observes, so long scans proceed while
// writers storm, and a query evaluated wholly against one snapshot sees a
// single consistent epoch per shard. Capture is O(shards): it loads one
// pointer per shard and copies nothing.
//
// Each shard's state is individually exact; when writers race the capture,
// states of different shards may be a few epochs apart (the same per-shard
// guarantee concurrent readers of the live graph get), and Epoch reports
// the graph-wide write epoch at capture.
type Snapshot struct {
	g      *Graph
	states []*shardState
	stats  Stats
	epoch  uint64
}

// Snapshot captures the currently published shard states as a stable view.
func (g *Graph) Snapshot() *Snapshot {
	states := make([]*shardState, len(g.shards))
	triples := 0
	for i, sh := range g.shards {
		states[i] = sh.state.Load()
		triples += states[i].triples
	}
	stats := g.Stats()
	stats.Triples = triples
	return &Snapshot{g: g, states: states, stats: stats, epoch: g.version.Load()}
}

// ID returns the identity of the underlying graph.
func (s *Snapshot) ID() uint64 { return s.g.gid }

// Epoch returns the graph write epoch the snapshot was captured at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// ShardEpochs appends the publication epoch of each captured shard state
// to dst and returns it. Unlike Epoch — the graph-wide version counter at
// capture, which a concurrent commit may have advanced before publishing —
// the vector identifies the captured states exactly: a shard's state is
// republished only under a fresh, strictly larger epoch stamp, so two
// snapshots of one graph with equal vectors observe identical indexes.
// This is the invalidation key of the answer cache (internal/qcache).
func (s *Snapshot) ShardEpochs(dst []uint64) []uint64 {
	for _, st := range s.states {
		dst = append(dst, st.epoch)
	}
	return dst
}

// Len returns the number of triples in the snapshot.
func (s *Snapshot) Len() int { return s.stats.Triples }

// ShardCount returns the number of index shards.
func (s *Snapshot) ShardCount() int { return len(s.states) }

// Stats returns the cardinality statistics captured with the snapshot.
func (s *Snapshot) Stats() Stats { return s.stats }

// PredStats returns the captured cardinality statistics of one predicate.
func (s *Snapshot) PredStats(p Term) (PredStats, bool) {
	pid, ok := s.g.lookup(p)
	if !ok {
		return PredStats{}, false
	}
	return predStatsIn(s.states[uint32(pid)&s.g.mask], pid)
}

// PredTopObjects returns the captured heavy-hitter object values of one
// predicate; see Graph.PredTopObjects.
func (s *Snapshot) PredTopObjects(p Term) []ObjectCount {
	pid, ok := s.g.lookup(p)
	if !ok {
		return nil
	}
	return predTopIn(s.g, s.states[uint32(pid)&s.g.mask], pid)
}

// Match is Graph.Match over the captured states.
func (s *Snapshot) Match(sp, pp, op *Term, fn func(Triple) bool) {
	sid, pid, oid, ok := s.g.lookupPattern(sp, pp, op)
	if !ok {
		return
	}
	if sp != nil || pp != nil {
		matchState(s.g, s.states[ownerIndex(s.g, sp, sid, pid)], sp, pp, op, sid, pid, oid, fn)
		return
	}
	for _, st := range s.states {
		if !matchState(s.g, st, sp, pp, op, sid, pid, oid, fn) {
			return
		}
	}
}

// MatchShard is Graph.MatchShard over the captured states.
func (s *Snapshot) MatchShard(i int, sp, pp, op *Term, fn func(Triple) bool) {
	if i < 0 || i >= len(s.states) {
		return
	}
	sid, pid, oid, ok := s.g.lookupPattern(sp, pp, op)
	if !ok {
		return
	}
	if sp != nil || pp != nil {
		if int(ownerIndex(s.g, sp, sid, pid)) != i {
			return
		}
	}
	matchState(s.g, s.states[i], sp, pp, op, sid, pid, oid, fn)
}

// MatchCount is Graph.MatchCount over the captured states.
func (s *Snapshot) MatchCount(sp, pp, op *Term) int {
	sid, pid, oid, ok := s.g.lookupPattern(sp, pp, op)
	if !ok {
		return 0
	}
	if sp != nil || pp != nil {
		return countState(s.states[ownerIndex(s.g, sp, sid, pid)], sp, pp, op, sid, pid, oid)
	}
	if op != nil {
		n := 0
		for _, st := range s.states {
			n += countState(st, sp, pp, op, sid, pid, oid)
		}
		return n
	}
	return s.Len()
}

// FanoutWidth mirrors Graph.FanoutWidth.
func (s *Snapshot) FanoutWidth(sp, pp, op *Term) int {
	if sp != nil || pp != nil {
		return 1
	}
	return len(s.states)
}

// Has reports whether the triple is present in the snapshot.
func (s *Snapshot) Has(t Triple) bool {
	sid, ok := s.g.lookup(t.S)
	if !ok {
		return false
	}
	pid, ok := s.g.lookup(t.P)
	if !ok {
		return false
	}
	oid, ok := s.g.lookup(t.O)
	if !ok {
		return false
	}
	return idxHas(&s.states[uint32(sid)&s.g.mask].spo, sid, pid, oid)
}

// ForEach iterates every triple of the snapshot until fn returns false.
func (s *Snapshot) ForEach(fn func(Triple) bool) {
	for _, st := range s.states {
		if !forEachSPO(s.g, st, fn) {
			return
		}
	}
}

// Triples returns all snapshot triples sorted in (S, P, O) order.
func (s *Snapshot) Triples() []Triple {
	out := make([]Triple, 0, s.Len())
	s.ForEach(func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
