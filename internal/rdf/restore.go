package rdf

import (
	"fmt"
)

// IDTriple is a dictionary-encoded triple as the checkpoint files store
// it: three positions into the checkpoint's term list. The ids are local
// to one checkpoint — RestoreBulk maps position i to the i-th term it is
// given, so the encoding carries no global state across files.
type IDTriple struct{ S, P, O uint32 }

// RestoreBulk loads a decoded checkpoint into an empty graph: terms in id
// order plus the triples referencing them by position. It is the fast
// twin of replaying the triples through the batch write path, cutting the
// two costs a recovery pays nowhere else: the dictionary is constructed
// in one pass (no per-term stripe locking or promotion, no re-hash of
// strings the checkpoint already deduplicated) and the triples skip
// interning entirely — their ids are their positions. The index build,
// statistics and refcounts go through the same per-shard machinery as a
// batch commit, so the resulting graph is indistinguishable from one that
// loaded the same triples via Batch (pinned by TestRestoreBulkEquivalence).
//
// The graph must be empty and unshared; the final Version is left at the
// effective triple count, and callers recovering to a known epoch follow
// up with RestoreVersion exactly as they would after a batch replay.
func (g *Graph) RestoreBulk(terms []Term, triples []IDTriple) error {
	if g.size.Load() != 0 || g.version.Load() != 0 || g.dict.count() != 0 {
		return fmt.Errorf("rdf: RestoreBulk needs an empty graph")
	}
	n := uint32(len(terms))
	for _, t := range triples {
		if t.S >= n || t.P >= n || t.O >= n {
			return fmt.Errorf("%w: triple term id out of range", ErrCodec)
		}
		if !(Triple{S: terms[t.S], P: terms[t.P], O: terms[t.O]}).Valid() {
			return fmt.Errorf("%w: triple violates RDF typing", ErrCodec)
		}
	}
	if err := g.dict.bulkLoad(terms); err != nil {
		return err
	}
	if len(triples) == 0 {
		return nil
	}

	// From here on this is a batch commit specialised to "add-only, ids
	// already resolved, no persistence hook": group by owning shard, build
	// both partitions in two fanned-out phases, publish, then settle the
	// statistics. Shard locks are still taken — the graph is unshared, so
	// they are uncontended, and keeping the discipline means this path can
	// never rot into a second locking protocol.
	nsh := len(g.shards)
	subOps := make([][]int32, nsh)
	predOps := make([][]int32, nsh)
	for k, t := range triples {
		si := t.S & g.mask
		pi := t.P & g.mask
		subOps[si] = append(subOps[si], int32(k))
		predOps[pi] = append(predOps[pi], int32(k))
	}
	touched := make([]int, 0, nsh)
	for i := 0; i < nsh; i++ {
		if len(subOps[i]) > 0 || len(predOps[i]) > 0 {
			touched = append(touched, i)
		}
	}
	cs := make([]commitShard, nsh)
	for _, si := range touched {
		sh := g.shards[si]
		sh.mu.Lock()
		st := &cs[si]
		st.base = sh.state.Load()
		st.sb = sh.builder()
		st.next = *st.base
	}

	effect := make([]int8, len(triples))
	spFlag := make([]bool, len(triples))
	parallel := len(triples) >= parallelAddThreshold && len(touched) > 1
	fanOut(parallel, touched, func(si int) {
		st := &cs[si]
		for _, k := range subOps[si] {
			t := triples[k]
			added, newS, newSP := st.sb.idxAdd(&st.next.spo, id(t.S), id(t.P), id(t.O))
			if !added {
				continue // duplicate in the file; tolerated like a batch would
			}
			st.sb.idxAdd(&st.next.osp, id(t.O), id(t.S), id(t.P))
			effect[k], spFlag[k] = 1, newSP
			st.dTriples++
			if newS {
				st.dSubj++
			}
			st.changed = true
		}
	})
	fanOut(parallel, touched, func(si int) {
		st := &cs[si]
		for _, k := range predOps[si] {
			if effect[k] == 0 {
				continue
			}
			t := triples[k]
			if st.sb.posAdd(&st.next.pos, id(t.P), id(t.O), id(t.S), spFlag[k]) {
				st.dPred++
			}
			st.changed = true
		}
	})

	nAdd := 0
	for _, e := range effect {
		if e == 1 {
			nAdd++
		}
	}
	epoch := g.version.Add(uint64(nAdd))
	for _, si := range touched {
		st := &cs[si]
		if st.changed {
			next := new(shardState)
			*next = st.next
			next.triples = st.base.triples + st.dTriples
			next.epoch = epoch
			g.shards[si].state.Store(next)
		}
		g.shards[si].rec.adapt()
		g.shards[si].mu.Unlock()
	}

	g.size.Add(int64(nAdd))
	var dS, dP, dO int64
	for _, si := range touched {
		dS += int64(cs[si].dSubj)
		dP += int64(cs[si].dPred)
	}
	for k, e := range effect {
		if e == 1 && g.objects.addRef(id(triples[k].O)) {
			dO++
		}
	}
	g.distinctS.Add(dS)
	g.distinctP.Add(dP)
	g.distinctO.Add(dO)
	return nil
}
