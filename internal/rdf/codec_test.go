package rdf

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randCodecTerm draws terms covering every encodable shape: IRIs, blanks,
// plain, typed and language-tagged literals, with values exercising empty
// strings, unicode, and the escape-sensitive characters.
func randCodecTerm(rng *rand.Rand) Term {
	values := []string{"", "a", "http://example.org/x", "héllo wörld ☃", "line\nbreak\tand \"quotes\" \\", "数据"}
	v := values[rng.Intn(len(values))]
	switch rng.Intn(5) {
	case 0:
		return IRI(v)
	case 1:
		return Blank(v)
	case 2:
		return Literal(v)
	case 3:
		return TypedLiteral(v, "http://www.w3.org/2001/XMLSchema#integer")
	default:
		return LangLiteral(v, "en-GB")
	}
}

func TestTermCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if err := quick.Check(func(pick uint32) bool {
		_ = pick
		in := randCodecTerm(rng)
		buf := AppendTerm(nil, in)
		out, rest, err := DecodeTerm(buf)
		if err != nil {
			t.Logf("decode error for %v: %v", in, err)
			return false
		}
		if len(rest) != 0 || out != in {
			t.Logf("round trip %v -> %v (rest %d)", in, out, len(rest))
			return false
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRecordCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		in := CommitRecord{Epoch: rng.Uint64() >> 1}
		for i, n := 0, rng.Intn(8); i < n; i++ {
			in.Ops = append(in.Ops, Op{Del: rng.Intn(2) == 0, T: randTriple(rng)})
		}
		buf := in.AppendBinary(nil)
		out, err := DecodeCommitRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v (record %+v)", err, in)
		}
		if out.Epoch != in.Epoch || len(out.Ops) != len(in.Ops) || (len(in.Ops) > 0 && !reflect.DeepEqual(out.Ops, in.Ops)) {
			t.Fatalf("round trip mismatch: in %+v out %+v", in, out)
		}
	}
}

// TestCodecRejectsCorruption pins the decoder contract the recovery path
// leans on: every truncation of a valid encoding, and a bit flip anywhere
// in it, must yield an error (or, for flips the payload codec cannot see,
// a changed decode — never a panic and never a silent misread of the
// original record).
func TestCodecRejectsCorruption(t *testing.T) {
	rec := CommitRecord{Epoch: 41, Ops: []Op{
		{T: Triple{S: IRI("http://e/s"), P: IRI("http://e/p"), O: LangLiteral("v", "en")}},
		{Del: true, T: Triple{S: Blank("b1"), P: IRI("http://e/q"), O: TypedLiteral("5", "http://www.w3.org/2001/XMLSchema#integer")}},
	}}
	buf := rec.AppendBinary(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeCommitRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(buf))
		}
	}
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << bit
			out, err := DecodeCommitRecord(mut)
			if err == nil && reflect.DeepEqual(out, rec) {
				t.Fatalf("bit flip at byte %d bit %d decoded back to the original record", i, bit)
			}
		}
	}
	if _, err := DecodeCommitRecord(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	} else if !errors.Is(err, ErrCodec) {
		t.Fatalf("corruption error not wrapped in ErrCodec: %v", err)
	}
}

// TestCodecRejectsInvalidShapes covers malformed inputs a fuzzer finds
// instantly: wild op counts, invalid kinds, flag bits on the wrong kinds,
// string lengths pointing past the payload.
func TestCodecRejectsInvalidShapes(t *testing.T) {
	cases := [][]byte{
		{},                          // empty
		{0x01},                      // epoch only
		{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // huge op count
		{0x01, 0x01, 0x07},          // bad op flag
		{0x01, 0x01, 0x00, 0x07},    // term tag with invalid kind bits combo (datatype on IRI)
		{0x01, 0x01, 0x00, 0x0f},    // both datatype and lang
		{0x01, 0x01, 0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f}, // string length past payload
	}
	for i, b := range cases {
		if _, err := DecodeCommitRecord(b); err == nil {
			t.Errorf("case %d: malformed record accepted", i)
		}
	}
	// a structurally well-formed record whose triple violates RDF typing
	// (literal subject) must be rejected too
	bad := binaryRecord(7, Op{T: Triple{S: Literal("x"), P: IRI("http://e/p"), O: IRI("http://e/o")}})
	if _, err := DecodeCommitRecord(bad); err == nil {
		t.Error("literal-subject triple accepted")
	}
}

// binaryRecord encodes without the Valid() guarantee AppendBinary callers
// normally uphold.
func binaryRecord(epoch uint64, ops ...Op) []byte {
	return CommitRecord{Epoch: epoch, Ops: ops}.AppendBinary(nil)
}
