package rdf

import (
	"sort"
)

// id is a dictionary-encoded term identifier local to one Graph.
type id uint32

// Graph is an in-memory, dictionary-encoded RDF graph with three full
// indexes (SPO, POS, OSP). It supports exact membership tests, wildcard
// matching on any combination of bound positions, and cheap iteration.
//
// Graph is not safe for concurrent mutation; concurrent readers are safe
// provided no writer is active.
type Graph struct {
	dict  map[Term]id
	terms []Term

	spo index
	pos index
	osp index

	size int
}

// index is a two-level map from (a, b) to a set of c, where (a, b, c) is a
// permutation of (s, p, o).
type index map[id]map[id]map[id]struct{}

func (ix index) add(a, b, c id) bool {
	m, ok := ix[a]
	if !ok {
		m = make(map[id]map[id]struct{})
		ix[a] = m
	}
	s, ok := m[b]
	if !ok {
		s = make(map[id]struct{})
		m[b] = s
	}
	if _, ok := s[c]; ok {
		return false
	}
	s[c] = struct{}{}
	return true
}

func (ix index) has(a, b, c id) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s, ok := m[b]
	if !ok {
		return false
	}
	_, ok = s[c]
	return ok
}

func (ix index) remove(a, b, c id) bool {
	m, ok := ix[a]
	if !ok {
		return false
	}
	s, ok := m[b]
	if !ok {
		return false
	}
	if _, ok := s[c]; !ok {
		return false
	}
	delete(s, c)
	if len(s) == 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		dict: make(map[Term]id),
		spo:  make(index),
		pos:  make(index),
		osp:  make(index),
	}
}

// intern returns the id for t, allocating one if needed.
func (g *Graph) intern(t Term) id {
	if i, ok := g.dict[t]; ok {
		return i
	}
	i := id(len(g.terms))
	g.dict[t] = i
	g.terms = append(g.terms, t)
	return i
}

// lookup returns the id for t and whether it is known to the graph.
func (g *Graph) lookup(t Term) (id, bool) {
	i, ok := g.dict[t]
	return i, ok
}

// Add inserts the triple and reports whether it was not already present.
func (g *Graph) Add(t Triple) bool {
	s, p, o := g.intern(t.S), g.intern(t.P), g.intern(t.O)
	if !g.spo.add(s, p, o) {
		return false
	}
	g.pos.add(p, o, s)
	g.osp.add(o, s, p)
	g.size++
	return true
}

// AddAll inserts all triples and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Remove deletes the triple and reports whether it was present.
func (g *Graph) Remove(t Triple) bool {
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	if !g.spo.remove(s, p, o) {
		return false
	}
	g.pos.remove(p, o, s)
	g.osp.remove(o, s, p)
	g.size--
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	return g.spo.has(s, p, o)
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.size }

// TermCount returns the number of distinct terms interned by the graph.
// Terms remain interned even if all triples mentioning them are removed.
func (g *Graph) TermCount() int { return len(g.terms) }

// ForEach calls fn for every triple until fn returns false. Iteration order
// is unspecified.
func (g *Graph) ForEach(fn func(Triple) bool) {
	for s, pm := range g.spo {
		for p, om := range pm {
			for o := range om {
				if !fn(Triple{S: g.terms[s], P: g.terms[p], O: g.terms[o]}) {
					return
				}
			}
		}
	}
}

// Triples returns all triples sorted in (S, P, O) order. The slice is fresh
// and owned by the caller.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.size)
	g.ForEach(func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Match calls fn for every triple matching the given pattern, where a nil
// position is a wildcard, until fn returns false. The best index for the
// bound positions is chosen automatically.
func (g *Graph) Match(s, p, o *Term, fn func(Triple) bool) {
	var sid, pid, oid id
	var sok, pok, ook bool
	if s != nil {
		if sid, sok = g.lookup(*s); !sok {
			return
		}
	}
	if p != nil {
		if pid, pok = g.lookup(*p); !pok {
			return
		}
	}
	if o != nil {
		if oid, ook = g.lookup(*o); !ook {
			return
		}
	}
	switch {
	case s != nil && p != nil && o != nil:
		if g.spo.has(sid, pid, oid) {
			fn(Triple{S: *s, P: *p, O: *o})
		}
	case s != nil && p != nil:
		for o2 := range g.spo[sid][pid] {
			if !fn(Triple{S: *s, P: *p, O: g.terms[o2]}) {
				return
			}
		}
	case p != nil && o != nil:
		for s2 := range g.pos[pid][oid] {
			if !fn(Triple{S: g.terms[s2], P: *p, O: *o}) {
				return
			}
		}
	case s != nil && o != nil:
		for p2 := range g.osp[oid][sid] {
			if !fn(Triple{S: *s, P: g.terms[p2], O: *o}) {
				return
			}
		}
	case s != nil:
		for p2, om := range g.spo[sid] {
			for o2 := range om {
				if !fn(Triple{S: *s, P: g.terms[p2], O: g.terms[o2]}) {
					return
				}
			}
		}
	case p != nil:
		for o2, sm := range g.pos[pid] {
			for s2 := range sm {
				if !fn(Triple{S: g.terms[s2], P: *p, O: g.terms[o2]}) {
					return
				}
			}
		}
	case o != nil:
		for s2, pm := range g.osp[oid] {
			for p2 := range pm {
				if !fn(Triple{S: g.terms[s2], P: g.terms[p2], O: *o}) {
					return
				}
			}
		}
	default:
		g.ForEach(fn)
	}
}

// Stats summarises the cardinalities held by the graph's SPO/POS/OSP
// indexes. The query planner (internal/plan) uses it to estimate how many
// rows a triple pattern produces once some of its variables are bound: the
// distinct-count of a position approximates the fan-out per bound value.
// All fields are maintained incrementally by the indexes, so Stats is O(1).
type Stats struct {
	// Triples is the total number of triples (same as Len).
	Triples int
	// DistinctSubjects, DistinctPredicates and DistinctObjects count the
	// distinct terms occurring in each position.
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
}

// Stats returns the graph's cardinality statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Triples:            g.size,
		DistinctSubjects:   len(g.spo),
		DistinctPredicates: len(g.pos),
		DistinctObjects:    len(g.osp),
	}
}

// MatchCount returns the number of triples matching the pattern without
// materialising them. Used by the query planner for cardinality estimates.
func (g *Graph) MatchCount(s, p, o *Term) int {
	var sid, pid, oid id
	var ok bool
	if s != nil {
		if sid, ok = g.lookup(*s); !ok {
			return 0
		}
	}
	if p != nil {
		if pid, ok = g.lookup(*p); !ok {
			return 0
		}
	}
	if o != nil {
		if oid, ok = g.lookup(*o); !ok {
			return 0
		}
	}
	switch {
	case s != nil && p != nil && o != nil:
		if g.spo.has(sid, pid, oid) {
			return 1
		}
		return 0
	case s != nil && p != nil:
		return len(g.spo[sid][pid])
	case p != nil && o != nil:
		return len(g.pos[pid][oid])
	case s != nil && o != nil:
		return len(g.osp[oid][sid])
	case s != nil:
		n := 0
		for _, om := range g.spo[sid] {
			n += len(om)
		}
		return n
	case p != nil:
		n := 0
		for _, sm := range g.pos[pid] {
			n += len(sm)
		}
		return n
	case o != nil:
		n := 0
		for _, pm := range g.osp[oid] {
			n += len(pm)
		}
		return n
	default:
		return g.size
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	g.ForEach(func(t Triple) bool {
		out.Add(t)
		return true
	})
	return out
}

// Merge adds every triple of other into g and returns the number added.
func (g *Graph) Merge(other *Graph) int {
	n := 0
	other.ForEach(func(t Triple) bool {
		if g.Add(t) {
			n++
		}
		return true
	})
	return n
}

// ContainsGraph reports whether every triple of other is present in g.
func (g *Graph) ContainsGraph(other *Graph) bool {
	ok := true
	other.ForEach(func(t Triple) bool {
		if !g.Has(t) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equal reports whether g and other contain exactly the same triples.
func (g *Graph) Equal(other *Graph) bool {
	return g.size == other.size && g.ContainsGraph(other)
}

// Subjects returns the set of distinct subject terms.
func (g *Graph) Subjects() []Term {
	out := make([]Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, g.terms[s])
	}
	sortTerms(out)
	return out
}

// Predicates returns the set of distinct predicate terms.
func (g *Graph) Predicates() []Term {
	out := make([]Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, g.terms[p])
	}
	sortTerms(out)
	return out
}

// Objects returns the set of distinct object terms.
func (g *Graph) Objects() []Term {
	out := make([]Term, 0, len(g.osp))
	for o := range g.osp {
		out = append(out, g.terms[o])
	}
	sortTerms(out)
	return out
}

// IRIs returns every distinct IRI occurring in any position of any triple.
// This is the "peer schema" of a data source in the sense of Section 2.2.
func (g *Graph) IRIs() []Term {
	seen := make(map[Term]struct{})
	g.ForEach(func(t Triple) bool {
		for _, x := range t.Terms() {
			if x.IsIRI() {
				seen[x] = struct{}{}
			}
		}
		return true
	})
	out := make([]Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sortTerms(out)
	return out
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
