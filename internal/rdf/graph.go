package rdf

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// id is a dictionary-encoded term identifier local to one Graph.
type id uint32

// Graph is an in-memory, dictionary-encoded RDF graph with three full
// indexes (SPO, POS, OSP), partitioned into shards for concurrency: SPO and
// OSP are subject-hash partitioned and POS is predicate-hash partitioned.
// It supports exact membership tests, wildcard matching on any combination
// of bound positions, and cheap iteration.
//
// Reads are epoch-based and lock-free. Each shard's indexes live in an
// immutable shardState published through an atomic pointer: Match,
// MatchShard, MatchCount, Has, Stats and PredStats load the current state
// and traverse it without acquiring any lock, so a long scan can never
// block a writer and a writer storm can never stall readers. Writers
// serialise on a per-shard mutex, rebuild only the O(log n) trie path the
// mutation touches through a transient builder (the indexes are
// persistent hash-array-mapped tries — tree.go, transient.go), and
// republish the shard state with a single atomic store stamped with the
// graph's write epoch. Bulk writers open a Batch instead: per shard, the
// whole batch is one transient build over the current state — first touch
// of a path copies it, later touches edit in place — frozen and published
// once, so nothing of a batch is observable before Commit and the
// publication cost amortises over the batch. Snapshot captures the
// published states of all shards as a stable point-in-time view that
// later writes can never perturb — the foundation for the planner's
// per-query snapshots and the chase's per-round read phases.
//
// Iteration callbacks (Match, ForEach, MatchShard) therefore run against a
// frozen state: they may freely read or even mutate the same graph, though
// mutations made during iteration are not observed by it.
type Graph struct {
	gid  uint64
	dict *termTable

	shards []*shard
	mask   uint32 // len(shards)-1; shard of an id is id&mask

	size    atomic.Int64
	version atomic.Uint64

	distinctS atomic.Int64
	distinctP atomic.Int64
	distinctO atomic.Int64

	objects objTable

	// scratch pools commitScratch values across Batch commits, so the
	// delta chase's many tiny batches stop paying O(shard-count)
	// allocations per commit (batch.go).
	scratch sync.Pool

	// persist is the optional durability hook (persist.go). When attached,
	// every effective write appends a CommitRecord before publishing;
	// persistMu serialises (epoch assignment, append) pairs so the log's
	// record order is the epoch order, and persistErr latches the first
	// logging failure. All three are write-path only — no reader touches
	// them.
	persist    atomic.Pointer[persistBox]
	persistMu  sync.Mutex
	persistErr atomic.Pointer[errBox]
	// inflight tracks logged-but-not-yet-published epochs (guarded by
	// persistMu); PublishedFloor derives the WAL retirement bound from it.
	inflight map[uint64]struct{}
}

// shard is one partition of the graph's indexes. Writers lock mu, derive
// the next immutable state from the current one, and publish it; readers
// only ever Load. The spo and osp tries of a state hold the triples whose
// subject id hashes here; the pos trie and the per-predicate statistics
// hold the triples whose predicate id hashes here. A triple therefore
// lives in one or two shards, and Add/Remove lock both in ascending order.
type shard struct {
	mu    sync.Mutex
	state atomic.Pointer[shardState]
	// rec holds the shard's node pools: the free lists through which
	// builders recycle nodes born and discarded in the same batch.
	// Guarded by mu.
	rec recycler
}

// shardState is the immutable, atomically-published form of one shard: the
// persistent index tries plus the statistics derived from them. Every
// write (or batch of writes) produces a fresh state; a state, once
// published, is never modified, which is what makes the lock-free read
// path and stable snapshots sound. The trie headers are embedded by value:
// a writer starts from a value copy of the current state, mutates the
// copy's headers through a transient builder (transient.go), and publishes
// the copy — the header structs are private to each state, only the nodes
// beneath them are shared.
type shardState struct {
	spo pindex
	osp pindex
	// pos also carries the per-predicate cardinalities for the predicates
	// owned by this shard, maintained inside its entry values (posEntry).
	pos posdex
	// triples counts the triples owned via the subject partition (the size
	// of spo), so Snapshot.Len sums exactly.
	triples int
	// epoch is the graph write epoch (Version) this state was published at.
	epoch uint64
}

var emptyShardState = &shardState{}

// objTable tracks the reference count of every object term across shards.
// OSP is subject-partitioned, so the same object may appear in many shards;
// the striped refcounts keep the global distinct-object count exact without
// a global lock. Only writers touch it. Term ids are dense (the dictionary
// hands them out sequentially), so each stripe is a plain slice indexed by
// id/stripes rather than a map: a refcount touch is an array access, and
// growth amortises to nothing.
type objTable struct {
	stripes [termStripes]objStripe
}

type objStripe struct {
	mu sync.Mutex
	// counts[i] is the refcount of the id whose stripe-local index is i
	// (the id is i*termStripes + stripeIndex).
	counts []int32
}

// grow extends counts to cover stripe-local index i. Caller holds mu.
func (st *objStripe) grow(i int) {
	for i >= len(st.counts) {
		st.counts = append(st.counts, make([]int32, i+1-len(st.counts)+16)...)
	}
}

// addRef reports whether o became referenced (count 0 → 1).
func (ot *objTable) addRef(o id) bool {
	st := &ot.stripes[o&(termStripes-1)]
	i := int(o) / termStripes
	st.mu.Lock()
	defer st.mu.Unlock()
	st.grow(i)
	st.counts[i]++
	return st.counts[i] == 1
}

// decRef reports whether o became unreferenced (count 1 → 0). It must
// tolerate ids its stripe has never counted: refcounts are updated after
// the new shard states are published and the shard locks released, so a
// Remove of a just-published triple can reach decRef before the adding
// writer's addRef. The count then goes transiently negative (exactly as
// the map-based table allowed) and the racing addRef restores it to zero;
// neither side reports a distinct-object transition, so the net statistics
// stay right.
func (ot *objTable) decRef(o id) bool {
	st := &ot.stripes[o&(termStripes-1)]
	i := int(o) / termStripes
	st.mu.Lock()
	defer st.mu.Unlock()
	st.grow(i)
	st.counts[i]--
	return st.counts[i] == 0
}

// forEach calls fn for every referenced object id, stripe by stripe.
func (ot *objTable) forEach(fn func(id)) {
	for s := range ot.stripes {
		st := &ot.stripes[s]
		st.mu.Lock()
		for i, c := range st.counts {
			if c > 0 {
				fn(id(i*termStripes + s))
			}
		}
		st.mu.Unlock()
	}
}

// graphIDs issues the process-unique graph identities behind Graph.ID.
var graphIDs atomic.Uint64

// defaultShards overrides the automatic shard count when positive; set via
// SetDefaultShardCount (the -shards flag of the commands).
var defaultShards atomic.Int32

// maxShards bounds the shard count; beyond this, per-shard fixed costs
// outweigh added parallelism.
const maxShards = 256

// SetDefaultShardCount fixes the shard count NewGraph uses, rounded up to a
// power of two and clamped to [1, 256]. n <= 0 restores the automatic
// default (the next power of two ≥ GOMAXPROCS).
func SetDefaultShardCount(n int) {
	if n <= 0 {
		defaultShards.Store(0)
		return
	}
	defaultShards.Store(int32(ceilPow2(n)))
}

// DefaultShardCount reports the shard count NewGraph currently uses.
func DefaultShardCount() int {
	if n := defaultShards.Load(); n > 0 {
		return int(n)
	}
	return ceilPow2(runtime.GOMAXPROCS(0))
}

func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// NewGraph returns an empty graph with the default shard count.
func NewGraph() *Graph {
	return NewGraphSharded(DefaultShardCount())
}

// NewGraphSharded returns an empty graph with the given shard count,
// rounded up to a power of two and clamped to [1, 256]. Shard count is a
// concurrency knob only: graphs with different shard counts hold identical
// triple sets and statistics.
func NewGraphSharded(n int) *Graph {
	n = ceilPow2(n)
	g := &Graph{
		gid:    graphIDs.Add(1),
		dict:   newTermTable(),
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
	}
	for i := range g.shards {
		sh := &shard{}
		sh.state.Store(emptyShardState)
		g.shards[i] = sh
	}
	return g
}

// ID returns a process-unique identity for the graph, used by the query
// planner's plan cache to key cached join orders.
func (g *Graph) ID() uint64 { return g.gid }

// Version returns a counter incremented by every successful Add or Remove —
// the graph's write epoch. Shard states and snapshots are stamped with the
// epoch they were published at.
func (g *Graph) Version() uint64 { return g.version.Load() }

// Epoch is Version under the name the Source interface uses.
func (g *Graph) Epoch() uint64 { return g.version.Load() }

// ShardCount returns the number of index shards.
func (g *Graph) ShardCount() int { return len(g.shards) }

// subjectShard and predicateShard locate an id's owning partition.
func (g *Graph) subjectShard(s id) *shard   { return g.shards[uint32(s)&g.mask] }
func (g *Graph) predicateShard(p id) *shard { return g.shards[uint32(p)&g.mask] }

// lockPair write-locks the subject and predicate shards in ascending index
// order (the same order Batch.Commit acquires its lock set in, so writers
// can never deadlock); unlockPair releases them.
func (g *Graph) lockPair(i, j uint32) {
	if i == j {
		g.shards[i].mu.Lock()
		return
	}
	if i > j {
		i, j = j, i
	}
	g.shards[i].mu.Lock()
	g.shards[j].mu.Lock()
}

func (g *Graph) unlockPair(i, j uint32) {
	if i == j {
		g.shards[i].mu.Unlock()
		return
	}
	g.shards[i].mu.Unlock()
	g.shards[j].mu.Unlock()
}

// lookup returns the id for t and whether it is known to the graph.
func (g *Graph) lookup(t Term) (id, bool) { return g.dict.lookup(t) }

// term resolves an interned id to its term.
func (g *Graph) term(i id) Term { return g.dict.term(i) }

// Add inserts the triple and reports whether it was not already present.
// Safe for concurrent use; concurrent readers keep scanning the previous
// shard states and observe the triple once the new states are published.
// The copied trie path is carved from the shard's node pools (the
// "scratch" role of the recycler), so a single write costs a handful of
// heap allocations rather than one per copied node and slice. For bulk
// writes, NewBatch/AddAll amortise far more: see Batch.
func (g *Graph) Add(t Triple) bool {
	s, p, o := g.dict.intern(t.S), g.dict.intern(t.P), g.dict.intern(t.O)
	si, pi := uint32(s)&g.mask, uint32(p)&g.mask
	sh, ph := g.shards[si], g.shards[pi]
	g.lockPair(si, pi)
	ss := sh.state.Load()
	sb := sh.builder()
	ns := &shardState{spo: ss.spo, osp: ss.osp, pos: ss.pos, triples: ss.triples + 1}
	added, newS, newSP := sb.idxAdd(&ns.spo, s, p, o)
	if !added { // idxAdd's read-only duplicate probe found the triple
		g.unlockPair(si, pi)
		return false
	}
	sb.idxAdd(&ns.osp, o, s, p)
	np, pb := ns, sb
	if ph != sh {
		ps := ph.state.Load()
		np = &shardState{spo: ps.spo, osp: ps.osp, pos: ps.pos, triples: ps.triples}
		pb = ph.builder()
	}
	newP := pb.posAdd(&np.pos, p, o, s, newSP)

	epoch, token, box, ok := g.logSingle(false, t)
	if !ok { // the WAL refused the record: abort before anything publishes
		g.unlockPair(si, pi)
		return false
	}
	ns.epoch = epoch
	if ph == sh {
		sh.state.Store(ns)
	} else {
		// publish the predicate partition first, then the subject partition
		// that makes the triple matchable by subject — readers racing the
		// publish see a prefix of the write, exactly as with per-shard locks
		np.epoch = epoch
		ph.state.Store(np)
		sh.state.Store(ns)
	}
	g.unlockPair(si, pi)
	g.publishDone(box, epoch)
	g.awaitSingle(box, token)

	g.size.Add(1)
	if newS {
		g.distinctS.Add(1)
	}
	if newP {
		g.distinctP.Add(1)
	}
	if g.objects.addRef(o) {
		g.distinctO.Add(1)
	}
	return true
}

// parallelAddThreshold is the batch size above which a batch commit fans
// its per-shard work out across goroutines.
const parallelAddThreshold = 2048

// AddAll inserts all triples and returns the number newly added. The load
// runs as one Batch: per-shard transient builders, one state publication
// and epoch stamp per shard, fanning out across the shards when the batch
// is large and more than one CPU is available. The resulting graph is
// identical to adding the triples one at a time.
func (g *Graph) AddAll(ts []Triple) int {
	b := Batch{g: g, ops: ts}
	return b.Commit()
}

// Remove deletes the triple and reports whether it was present. Safe for
// concurrent use. Like Add, the copied trie path comes from the shard
// pools, and subtrees that were created by the same write (never published)
// are recycled.
func (g *Graph) Remove(t Triple) bool {
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	si, pi := uint32(s)&g.mask, uint32(p)&g.mask
	sh, ph := g.shards[si], g.shards[pi]
	g.lockPair(si, pi)
	ss := sh.state.Load()
	sb := sh.builder()
	ns := &shardState{spo: ss.spo, osp: ss.osp, pos: ss.pos, triples: ss.triples - 1}
	removed, goneS, goneSP := sb.idxRemove(&ns.spo, s, p, o)
	if !removed { // idxRemove's read-only probe missed the triple
		g.unlockPair(si, pi)
		return false
	}
	sb.idxRemove(&ns.osp, o, s, p)
	np, pb := ns, sb
	if ph != sh {
		ps := ph.state.Load()
		np = &shardState{spo: ps.spo, osp: ps.osp, pos: ps.pos, triples: ps.triples}
		pb = ph.builder()
	}
	goneP := pb.posRemove(&np.pos, p, o, s, goneSP)

	epoch, token, box, ok := g.logSingle(true, t)
	if !ok {
		g.unlockPair(si, pi)
		return false
	}
	ns.epoch = epoch
	if ph == sh {
		sh.state.Store(ns)
	} else {
		np.epoch = epoch
		sh.state.Store(ns)
		ph.state.Store(np)
	}
	g.unlockPair(si, pi)
	g.publishDone(box, epoch)
	g.awaitSingle(box, token)

	g.size.Add(-1)
	if goneS {
		g.distinctS.Add(-1)
	}
	if goneP {
		g.distinctP.Add(-1)
	}
	if g.objects.decRef(o) {
		g.distinctO.Add(-1)
	}
	return true
}

// Has reports whether the triple is present. Lock-free.
func (g *Graph) Has(t Triple) bool {
	s, ok := g.lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.lookup(t.O)
	if !ok {
		return false
	}
	return idxHas(&g.subjectShard(s).state.Load().spo, s, p, o)
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return int(g.size.Load()) }

// TermCount returns the number of distinct terms interned by the graph.
// Terms remain interned even if all triples mentioning them are removed.
func (g *Graph) TermCount() int { return g.dict.count() }

// ForEach calls fn for every triple until fn returns false. Iteration order
// is unspecified. fn runs against the shard states published at visit time
// and never blocks writers.
func (g *Graph) ForEach(fn func(Triple) bool) {
	for _, sh := range g.shards {
		if !forEachSPO(g, sh.state.Load(), fn) {
			return
		}
	}
}

// forEachSPO walks one state's subject-owned triples, reporting false if fn
// stopped the iteration.
func forEachSPO(g *Graph, st *shardState, fn func(Triple) bool) bool {
	return st.spo.each(func(s id, bm ipairs) bool {
		return bm.each(func(p id, cs iset) bool {
			return cs.each(func(o id, _ struct{}) bool {
				return fn(Triple{S: g.term(s), P: g.term(p), O: g.term(o)})
			})
		})
	})
}

// Triples returns all triples sorted in (S, P, O) order. The slice is fresh
// and owned by the caller.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	g.ForEach(func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Match calls fn for every triple matching the given pattern, where a nil
// position is a wildcard, until fn returns false. The best index for the
// bound positions is chosen automatically: subject-bound patterns probe one
// SPO/OSP shard, predicate-bound patterns one POS shard, and object-only or
// unconstrained patterns visit every shard in order (see MatchShard for the
// per-shard form the executor fans out over). The scan runs lock-free
// against each shard's published state; writers are never blocked.
func (g *Graph) Match(s, p, o *Term, fn func(Triple) bool) {
	sid, pid, oid, ok := g.lookupPattern(s, p, o)
	if !ok {
		return
	}
	if s != nil || p != nil {
		matchState(g, g.ownerState(s, sid, pid), s, p, o, sid, pid, oid, fn)
		return
	}
	for _, sh := range g.shards {
		if !matchState(g, sh.state.Load(), s, p, o, sid, pid, oid, fn) {
			return
		}
	}
}

// MatchShard is Match restricted to one shard: the union of
// MatchShard(i, …) over all i is exactly Match(…), with no overlap. For
// single-shard access paths only the owning shard yields matches; for
// object-only and unconstrained patterns every shard owns a partition. The
// query planner's fan-out scans drain shards concurrently through this.
func (g *Graph) MatchShard(i int, s, p, o *Term, fn func(Triple) bool) {
	if i < 0 || i >= len(g.shards) {
		return
	}
	sid, pid, oid, ok := g.lookupPattern(s, p, o)
	if !ok {
		return
	}
	if s != nil || p != nil {
		if int(ownerIndex(g, s, sid, pid)) != i {
			return
		}
	}
	matchState(g, g.shards[i].state.Load(), s, p, o, sid, pid, oid, fn)
}

// FanoutWidth returns the number of shard partitions Match visits for the
// pattern: 1 for subject- or predicate-bound access paths, the shard count
// for object-only and unconstrained scans.
func (g *Graph) FanoutWidth(s, p, o *Term) int {
	if s != nil || p != nil {
		return 1
	}
	return len(g.shards)
}

// lookupPattern resolves the bound positions; ok is false when any bound
// term is unknown to the graph (no triple can match).
func (g *Graph) lookupPattern(s, p, o *Term) (sid, pid, oid id, ok bool) {
	if s != nil {
		if sid, ok = g.lookup(*s); !ok {
			return 0, 0, 0, false
		}
	}
	if p != nil {
		if pid, ok = g.lookup(*p); !ok {
			return 0, 0, 0, false
		}
	}
	if o != nil {
		if oid, ok = g.lookup(*o); !ok {
			return 0, 0, 0, false
		}
	}
	return sid, pid, oid, true
}

// ownerIndex picks the shard index a subject- or predicate-bound pattern
// lives in: the subject shard when the subject is bound, else the
// predicate shard.
func ownerIndex(g *Graph, s *Term, sid, pid id) uint32 {
	if s != nil {
		return uint32(sid) & g.mask
	}
	return uint32(pid) & g.mask
}

func (g *Graph) ownerState(s *Term, sid, pid id) *shardState {
	return g.shards[ownerIndex(g, s, sid, pid)].state.Load()
}

// matchState matches the pattern against one immutable shard state,
// returning false if fn stopped the iteration. The caller has already
// routed the pattern to the owning shard (or is fanning out). Shared by
// Graph (which loads the current state) and Snapshot (which replays a
// captured one).
func matchState(g *Graph, st *shardState, s, p, o *Term, sid, pid, oid id, fn func(Triple) bool) bool {
	switch {
	case s != nil && p != nil && o != nil:
		if idxHas(&st.spo, sid, pid, oid) {
			return fn(Triple{S: *s, P: *p, O: *o})
		}
	case s != nil && p != nil:
		cs := idxBucket(&st.spo, sid, pid)
		return cs.each(func(o2 id, _ struct{}) bool {
			return fn(Triple{S: *s, P: *p, O: g.term(o2)})
		})
	case p != nil && o != nil:
		cs := posBucket(&st.pos, pid, oid)
		return cs.each(func(s2 id, _ struct{}) bool {
			return fn(Triple{S: g.term(s2), P: *p, O: *o})
		})
	case s != nil && o != nil:
		cs := idxBucket(&st.osp, oid, sid)
		return cs.each(func(p2 id, _ struct{}) bool {
			return fn(Triple{S: *s, P: g.term(p2), O: *o})
		})
	case s != nil:
		bm, _ := st.spo.get(sid)
		return bm.each(func(p2 id, cs iset) bool {
			return cs.each(func(o2 id, _ struct{}) bool {
				return fn(Triple{S: *s, P: g.term(p2), O: g.term(o2)})
			})
		})
	case p != nil:
		e, _ := st.pos.get(pid)
		return e.pairs.each(func(o2 id, cs iset) bool {
			return cs.each(func(s2 id, _ struct{}) bool {
				return fn(Triple{S: g.term(s2), P: *p, O: g.term(o2)})
			})
		})
	case o != nil:
		bm, _ := st.osp.get(oid)
		return bm.each(func(s2 id, cs iset) bool {
			return cs.each(func(p2 id, _ struct{}) bool {
				return fn(Triple{S: g.term(s2), P: g.term(p2), O: *o})
			})
		})
	default:
		return forEachSPO(g, st, fn)
	}
	return true
}

// Stats summarises the cardinalities held by the graph's indexes. The query
// planner (internal/plan) uses it to estimate how many rows a triple
// pattern produces once some of its variables are bound: the distinct-count
// of a position approximates the fan-out per bound value. All fields are
// maintained incrementally as atomic counters, so Stats is O(1) and
// lock-free; under concurrent mutation the fields are individually accurate
// but may reflect slightly different instants. In particular the counters
// are applied after a write publishes, so during a concurrent Batch commit
// they can trail the published shard states by up to that batch — estimates
// read mid-bulk-load self-correct on the next read. See PredStats for the
// per-predicate refinement the planner prefers.
type Stats struct {
	// Triples is the total number of triples (same as Len).
	Triples int
	// DistinctSubjects, DistinctPredicates and DistinctObjects count the
	// distinct terms occurring in each position.
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
}

// Stats returns the graph's cardinality statistics. The counters are
// maintained incrementally and applied after a commit publishes, so under
// concurrent writers a reading may trail (or, relative to an earlier
// snapshot, lead) the published state by up to the in-flight commits'
// effective ops — batch-scale skew, never more (pinned by
// TestStatsSkewBoundedDuringCommits). At quiescence the counters are
// exact (TestStatsExactAtQuiescence), which is what lets recovery trust
// them after replay.
func (g *Graph) Stats() Stats {
	return Stats{
		Triples:            g.Len(),
		DistinctSubjects:   int(g.distinctS.Load()),
		DistinctPredicates: int(g.distinctP.Load()),
		DistinctObjects:    int(g.distinctO.Load()),
	}
}

// PredStats is the per-predicate refinement of Stats: the cardinalities of
// one predicate's extension, read off its POS shard. The planner divides by
// these — rather than the global distinct counts — when estimating the
// fan-out of a pattern with a constant predicate.
type PredStats struct {
	// Triples is the size of the predicate's extension.
	Triples int
	// DistinctSubjects and DistinctObjects count the distinct terms in
	// subject and object position of triples with this predicate.
	DistinctSubjects int
	DistinctObjects  int
}

// PredStats returns the cardinality statistics of one predicate, and false
// when no stored triple uses it. O(log n) and lock-free: the counts are
// maintained incrementally in the predicate shard's published state.
func (g *Graph) PredStats(p Term) (PredStats, bool) {
	pid, ok := g.lookup(p)
	if !ok {
		return PredStats{}, false
	}
	return predStatsIn(g.predicateShard(pid).state.Load(), pid)
}

func predStatsIn(st *shardState, pid id) (PredStats, bool) {
	e, ok := st.pos.get(pid)
	if !ok {
		return PredStats{}, false
	}
	return PredStats{
		Triples:          e.triples,
		DistinctSubjects: e.subjects,
		DistinctObjects:  e.pairs.size,
	}, true
}

// ObjectCount is one row of PredTopObjects: an object value of a
// predicate's extension and the number of triples carrying it.
type ObjectCount struct {
	Term  Term
	Count int
}

// PredTopObjects returns the predicate's heaviest object values, largest
// first — the per-value refinement of PredStats.DistinctObjects the
// planner uses to detect skew. The list comes from a small fixed-capacity
// sketch maintained in the predicate's POS shard (see topObjects): exact
// while the predicate's extension only grows, approximate after removals.
// Nil when the predicate is absent or its sketch is empty. O(log n) and
// lock-free like PredStats.
func (g *Graph) PredTopObjects(p Term) []ObjectCount {
	pid, ok := g.lookup(p)
	if !ok {
		return nil
	}
	return predTopIn(g, g.predicateShard(pid).state.Load(), pid)
}

func predTopIn(g *Graph, st *shardState, pid id) []ObjectCount {
	e, ok := st.pos.get(pid)
	if !ok || e.top.n == 0 {
		return nil
	}
	out := make([]ObjectCount, 0, e.top.n)
	for i := 0; i < int(e.top.n); i++ {
		out = append(out, ObjectCount{Term: g.term(e.top.e[i].o), Count: int(e.top.e[i].n)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term.String() < out[j].Term.String()
	})
	return out
}

// MatchCount returns the number of triples matching the pattern without
// materialising them. Used by the query planner for cardinality estimates.
// Lock-free like Match.
func (g *Graph) MatchCount(s, p, o *Term) int {
	sid, pid, oid, ok := g.lookupPattern(s, p, o)
	if !ok {
		return 0
	}
	if s != nil || p != nil {
		return countState(g.ownerState(s, sid, pid), s, p, o, sid, pid, oid)
	}
	if o != nil {
		n := 0
		for _, sh := range g.shards {
			n += countState(sh.state.Load(), s, p, o, sid, pid, oid)
		}
		return n
	}
	return g.Len()
}

// countState counts the matches of a pattern within one shard state; the
// unconstrained case is handled by the callers (it is a plain Len).
func countState(st *shardState, s, p, o *Term, sid, pid, oid id) int {
	switch {
	case s != nil && p != nil && o != nil:
		if idxHas(&st.spo, sid, pid, oid) {
			return 1
		}
		return 0
	case s != nil && p != nil:
		cs := idxBucket(&st.spo, sid, pid)
		return cs.len()
	case p != nil && o != nil:
		cs := posBucket(&st.pos, pid, oid)
		return cs.len()
	case s != nil && o != nil:
		cs := idxBucket(&st.osp, oid, sid)
		return cs.len()
	case s != nil:
		n := 0
		bm, _ := st.spo.get(sid)
		bm.each(func(_ id, cs iset) bool { n += cs.size; return true })
		return n
	case p != nil:
		if e, ok := st.pos.get(pid); ok {
			return e.triples
		}
		return 0
	default: // o != nil
		n := 0
		bm, _ := st.osp.get(oid)
		bm.each(func(_ id, cs iset) bool { n += cs.size; return true })
		return n
	}
}

// Clone returns a deep copy of the graph (with the same shard count).
func (g *Graph) Clone() *Graph {
	out := NewGraphSharded(len(g.shards))
	out.Merge(g)
	return out
}

// Merge adds every triple of other into g and returns the number added.
// other must not be g itself. Large merges load in parallel like AddAll.
func (g *Graph) Merge(other *Graph) int {
	ts := make([]Triple, 0, other.Len())
	other.ForEach(func(t Triple) bool {
		ts = append(ts, t)
		return true
	})
	return g.AddAll(ts)
}

// ContainsGraph reports whether every triple of other is present in g.
func (g *Graph) ContainsGraph(other *Graph) bool {
	ok := true
	other.ForEach(func(t Triple) bool {
		if !g.Has(t) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equal reports whether g and other contain exactly the same triples
// (regardless of their shard counts).
func (g *Graph) Equal(other *Graph) bool {
	return g.Len() == other.Len() && g.ContainsGraph(other)
}

// Subjects returns the set of distinct subject terms.
func (g *Graph) Subjects() []Term {
	var out []Term
	for _, sh := range g.shards {
		sh.state.Load().spo.each(func(s id, _ ipairs) bool {
			out = append(out, g.term(s))
			return true
		})
	}
	sortTerms(out)
	return out
}

// Predicates returns the set of distinct predicate terms.
func (g *Graph) Predicates() []Term {
	var out []Term
	for _, sh := range g.shards {
		sh.state.Load().pos.each(func(p id, _ posEntry) bool {
			out = append(out, g.term(p))
			return true
		})
	}
	sortTerms(out)
	return out
}

// Objects returns the set of distinct object terms.
func (g *Graph) Objects() []Term {
	var out []Term
	g.objects.forEach(func(o id) {
		out = append(out, g.term(o))
	})
	sortTerms(out)
	return out
}

// IRIs returns every distinct IRI occurring in any position of any triple.
// This is the "peer schema" of a data source in the sense of Section 2.2.
func (g *Graph) IRIs() []Term {
	seen := make(map[Term]struct{})
	g.ForEach(func(t Triple) bool {
		for _, x := range t.Terms() {
			if x.IsIRI() {
				seen[x] = struct{}{}
			}
		}
		return true
	})
	out := make([]Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sortTerms(out)
	return out
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
