package rdf

// Scrape-time accessors for the observability layer. Everything here reads
// already-published atomics or per-shard state pointers, so a metrics
// scrape never takes a lock and never perturbs readers or writers; nothing
// in this file is called on the read or write hot paths.

// ShardLen returns the number of triples in shard i's currently published
// state (0 for an out-of-range index).
func (g *Graph) ShardLen(i int) int {
	if i < 0 || i >= len(g.shards) {
		return 0
	}
	return g.shards[i].state.Load().triples
}

// FreeListReuses reports how many trie nodes writers have served from the
// per-shard free lists instead of allocating, summed over all shards and
// node pools. The ratio of this to write volume is the recycling
// effectiveness of the transient-builder write path.
func (g *Graph) FreeListReuses() int64 {
	var n int64
	for _, sh := range g.shards {
		n += sh.rec.idx.reuses.Load()
		n += sh.rec.pos.reuses.Load()
		n += sh.rec.pairs.reuses.Load()
		n += sh.rec.set.reuses.Load()
	}
	return n
}
