package rdf

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// capturePersistence records every CommitRecord it is handed; optional
// hooks inject failures and blocking for the abort and lock-freedom tests.
type capturePersistence struct {
	mu      sync.Mutex
	recs    []CommitRecord
	logErr  error // returned by LogCommit when set
	waitErr error // returned by WaitDurable when set
	gate    chan struct{} // when set, LogCommit blocks until it closes
	entered chan struct{} // closed once a LogCommit call reaches the gate
	once    sync.Once
	waits   []uint64
}

func (c *capturePersistence) LogCommit(rec CommitRecord) (uint64, error) {
	if c.gate != nil {
		if c.entered != nil {
			c.once.Do(func() { close(c.entered) })
		}
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.logErr != nil {
		return 0, c.logErr
	}
	// deep-copy Ops: the graph may reuse scratch behind the slice
	cp := CommitRecord{Epoch: rec.Epoch, Ops: append([]Op(nil), rec.Ops...)}
	c.recs = append(c.recs, cp)
	return uint64(len(c.recs)), nil
}

func (c *capturePersistence) WaitDurable(token uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waits = append(c.waits, token)
	return c.waitErr
}

func (c *capturePersistence) records() []CommitRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CommitRecord(nil), c.recs...)
}

// TestPersistenceSeesEffectiveOps pins the CommitRecord contract: only
// effective writes are logged, in application order, with the epoch after
// the commit, across single writes, batches, and no-op writes.
func TestPersistenceSeesEffectiveOps(t *testing.T) {
	g := NewGraphSharded(4)
	cap := &capturePersistence{}
	g.SetPersistence(cap)

	t1 := Triple{S: IRI("http://e/s1"), P: IRI("http://e/p"), O: IRI("http://e/o1")}
	t2 := Triple{S: IRI("http://e/s2"), P: IRI("http://e/p"), O: IRI("http://e/o2")}
	t3 := Triple{S: IRI("http://e/s3"), P: IRI("http://e/q"), O: Literal("x")}

	g.Add(t1)          // rec 1: epoch 1, [add t1]
	g.Add(t1)          // duplicate: no record
	g.Remove(t3)       // absent: no record
	b := g.NewBatch()
	b.Add(t2)
	b.Add(t1) // duplicate inside batch: not effective
	b.Add(t3)
	b.Remove(t1)
	if n := b.Commit(); n != 3 {
		t.Fatalf("batch commit = %d effective, want 3", n)
	}
	g.Remove(t3) // rec 3: epoch 5, [del t3]

	recs := cap.records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	if recs[0].Epoch != 1 || len(recs[0].Ops) != 1 || recs[0].Ops[0].Del || recs[0].Ops[0].T != t1 {
		t.Fatalf("rec 0 = %+v", recs[0])
	}
	wantBatch := []Op{{T: t2}, {T: t3}, {Del: true, T: t1}}
	if recs[1].Epoch != 4 || fmt.Sprint(recs[1].Ops) != fmt.Sprint(wantBatch) {
		t.Fatalf("rec 1 = %+v, want epoch 4 ops %+v", recs[1], wantBatch)
	}
	if recs[2].Epoch != 5 || !recs[2].Ops[0].Del || recs[2].Ops[0].T != t3 {
		t.Fatalf("rec 2 = %+v", recs[2])
	}
	if g.Version() != 5 {
		t.Fatalf("version = %d, want 5", g.Version())
	}
	if len(cap.waits) != 3 {
		t.Fatalf("WaitDurable called %d times, want 3", len(cap.waits))
	}
	if err := g.PersistenceError(); err != nil {
		t.Fatalf("unexpected sticky error: %v", err)
	}
}

// TestPersistenceLogErrorAbortsCommit: a LogCommit failure must leave the
// graph exactly as it was — nothing published, version unchanged, stats
// unchanged — and latch the error.
func TestPersistenceLogErrorAbortsCommit(t *testing.T) {
	for _, shards := range []int{1, 4} {
		g := NewGraphSharded(shards)
		seed := Triple{S: IRI("http://e/s0"), P: IRI("http://e/p"), O: IRI("http://e/o0")}
		g.Add(seed)
		cap := &capturePersistence{}
		g.SetPersistence(cap)

		boom := errors.New("disk on fire")
		cap.logErr = boom
		before := g.Triples()
		v0, s0 := g.Version(), g.Stats()

		t1 := Triple{S: IRI("http://e/s1"), P: IRI("http://e/p"), O: IRI("http://e/o1")}
		if g.Add(t1) {
			t.Fatal("Add reported success after refused log")
		}
		b := g.NewBatch()
		b.Add(Triple{S: IRI("http://e/s2"), P: IRI("http://e/p"), O: IRI("http://e/o2")})
		b.Remove(seed)
		if n, err := b.CommitErr(); n != 0 || !errors.Is(err, boom) {
			t.Fatalf("CommitErr = (%d, %v), want (0, %v)", n, err, boom)
		}
		if g.Remove(seed) {
			t.Fatal("Remove reported success after refused log")
		}

		if g.Version() != v0 || g.Stats() != s0 {
			t.Fatalf("graph advanced across aborted commits: version %d->%d stats %+v->%+v", v0, g.Version(), s0, g.Stats())
		}
		if got := g.Triples(); fmt.Sprint(got) != fmt.Sprint(before) {
			t.Fatalf("triples changed across aborted commits: %v -> %v", before, got)
		}
		if !errors.Is(g.PersistenceError(), boom) {
			t.Fatalf("PersistenceError = %v, want %v", g.PersistenceError(), boom)
		}

		// recovery of the hook does not clear the latch, but writes work again
		cap.logErr = nil
		if !g.Add(t1) {
			t.Fatal("Add failed after hook recovered")
		}
		if !errors.Is(g.PersistenceError(), boom) {
			t.Fatal("sticky error cleared")
		}
	}
}

// TestPersistenceWaitErrorSticky: WaitDurable failures don't undo the
// (already published) commit but must surface and latch.
func TestPersistenceWaitErrorSticky(t *testing.T) {
	g := NewGraph()
	cap := &capturePersistence{waitErr: errors.New("fsync lost")}
	g.SetPersistence(cap)
	b := g.NewBatch()
	tr := Triple{S: IRI("http://e/s"), P: IRI("http://e/p"), O: IRI("http://e/o")}
	b.Add(tr)
	n, err := b.CommitErr()
	if n != 1 || !errors.Is(err, cap.waitErr) {
		t.Fatalf("CommitErr = (%d, %v)", n, err)
	}
	if !g.Has(tr) {
		t.Fatal("published commit lost")
	}
	if !errors.Is(g.PersistenceError(), cap.waitErr) {
		t.Fatal("wait error not latched")
	}
}

// TestPersistenceEpochsStrictlyIncrease hammers concurrent writers and
// asserts the log order the WAL depends on: record epochs strictly
// increase in LogCommit call order, and each record's epoch equals the
// previous epoch plus its op count.
func TestPersistenceEpochsStrictlyIncrease(t *testing.T) {
	g := NewGraphSharded(8)
	cap := &capturePersistence{}
	g.SetPersistence(cap)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				if rng.Intn(3) == 0 {
					b := g.NewBatch()
					for j := 0; j < rng.Intn(6); j++ {
						b.Add(randTriple(rng))
					}
					b.Commit()
				} else {
					g.Add(randTriple(rng))
				}
			}
		}(w)
	}
	wg.Wait()
	recs := cap.records()
	var prev uint64
	for i, r := range recs {
		if r.Epoch <= prev {
			t.Fatalf("record %d epoch %d not above previous %d", i, r.Epoch, prev)
		}
		if r.Epoch-prev != uint64(len(r.Ops)) && i > 0 {
			t.Fatalf("record %d epoch %d jumps %d over previous with %d ops", i, r.Epoch, r.Epoch-prev, len(r.Ops))
		}
		prev = r.Epoch
	}
	if prev != g.Version() {
		t.Fatalf("last logged epoch %d != version %d", prev, g.Version())
	}
}

// TestRestoreVersion pins the recovery fast-forward: monotone, exact, and
// a no-op for stale values.
func TestRestoreVersion(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{S: IRI("http://e/s"), P: IRI("http://e/p"), O: IRI("http://e/o")})
	g.RestoreVersion(100)
	if g.Version() != 100 {
		t.Fatalf("version = %d, want 100", g.Version())
	}
	g.RestoreVersion(7) // backwards: ignored
	if g.Version() != 100 {
		t.Fatalf("version moved backwards to %d", g.Version())
	}
	g.Add(Triple{S: IRI("http://e/s2"), P: IRI("http://e/p"), O: IRI("http://e/o")})
	if g.Version() != 101 {
		t.Fatalf("version after restore+add = %d, want 101", g.Version())
	}
}

// TestReadPathLockFreeWithPersistence extends the PR 4 lock-freedom pin to
// a persistence-enabled graph under the worst write-side condition: a
// writer is parked *inside* LogCommit, holding its shard locks and the
// graph's persistence mutex. The whole read surface must still complete —
// WAL append can never add a lock to the read path.
func TestReadPathLockFreeWithPersistence(t *testing.T) {
	g := NewGraphSharded(8)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		g.Add(randTriple(rng))
	}
	g.dict.promoteAll()
	gate := make(chan struct{})
	entered := make(chan struct{})
	cap := &capturePersistence{gate: gate, entered: entered}
	g.SetPersistence(cap)

	writerDone := make(chan struct{})
	go func() { // parks in LogCommit holding shard locks + persistMu
		defer close(writerDone)
		g.Add(Triple{S: IRI("http://e/blocked"), P: IRI("http://e/p"), O: IRI("http://e/o")})
	}()
	select {
	case <-entered: // the writer is parked inside LogCommit
	case <-time.After(10 * time.Second):
		t.Fatal("writer never reached LogCommit")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		p0, s0, o0 := IRI("http://e/p0"), IRI("http://e/s0"), IRI("http://e/o0")
		n := 0
		g.Match(nil, &p0, nil, func(Triple) bool { n++; return true })
		g.Match(&s0, nil, nil, func(Triple) bool { n++; return true })
		g.Match(nil, nil, &o0, func(Triple) bool { n++; return true })
		for i := 0; i < g.ShardCount(); i++ {
			g.MatchShard(i, nil, nil, &o0, func(Triple) bool { n++; return true })
		}
		_ = g.MatchCount(nil, &p0, nil)
		_ = g.Has(Triple{S: s0, P: p0, O: o0})
		_ = g.Stats()
		_, _ = g.PredStats(p0)
		snap := g.Snapshot()
		snap.Match(nil, &p0, nil, func(Triple) bool { n++; return true })
		_ = snap.Len()
		_ = snap.ShardEpochs(nil)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("read path blocked while a writer was parked in LogCommit")
	}
	close(gate)
	<-writerDone
}

// TestSnapshotReadZeroAllocsWithPersistence extends the 0-alloc
// snapshot-read pin to a persistence-enabled graph: attaching a WAL hook
// must not add a single allocation to the read path.
func TestSnapshotReadZeroAllocsWithPersistence(t *testing.T) {
	g := NewGraphSharded(4)
	cap := &capturePersistence{}
	g.SetPersistence(cap)
	p := IRI("http://e/p")
	b := g.NewBatch()
	for i := 0; i < 512; i++ {
		b.Add(Triple{S: IRI(fmt.Sprintf("http://e/s%d", i%64)), P: p, O: IRI(fmt.Sprintf("http://e/o%d", i))})
	}
	b.Commit()
	g.dict.promoteAll()
	snap := g.Snapshot()
	s0 := IRI("http://e/s0")
	allocs := testing.AllocsPerRun(100, func() {
		n := 0
		snap.Match(&s0, &p, nil, func(Triple) bool { n++; return true })
		_ = snap.MatchCount(&s0, &p, nil)
		_ = snap.Stats()
	})
	if allocs != 0 {
		t.Fatalf("snapshot read allocates %.1f allocs/op with persistence attached, want 0", allocs)
	}
}
