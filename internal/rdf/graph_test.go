package rdf

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return Triple{S: IRI("http://e/" + s), P: IRI("http://e/" + p), O: IRI("http://e/" + o)}
}

func TestGraphAddHasLen(t *testing.T) {
	g := NewGraph()
	if g.Len() != 0 {
		t.Fatalf("empty graph Len = %d", g.Len())
	}
	if !g.Add(tr("a", "p", "b")) {
		t.Error("first Add should report true")
	}
	if g.Add(tr("a", "p", "b")) {
		t.Error("duplicate Add should report false")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if !g.Has(tr("a", "p", "b")) {
		t.Error("Has should find added triple")
	}
	if g.Has(tr("a", "p", "c")) {
		t.Error("Has found absent triple")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	g.Add(tr("a", "p", "c"))
	if !g.Remove(tr("a", "p", "b")) {
		t.Error("Remove of present triple should be true")
	}
	if g.Remove(tr("a", "p", "b")) {
		t.Error("second Remove should be false")
	}
	if g.Remove(tr("x", "y", "z")) {
		t.Error("Remove of unknown terms should be false")
	}
	if g.Len() != 1 || !g.Has(tr("a", "p", "c")) {
		t.Error("Remove damaged sibling triple")
	}
	// indexes must agree after removal
	got := 0
	g.Match(nil, termPtr(IRI("http://e/p")), nil, func(Triple) bool { got++; return true })
	if got != 1 {
		t.Errorf("POS index returned %d matches, want 1", got)
	}
}

func termPtr(t Term) *Term { return &t }

func TestGraphMatchAllCombinations(t *testing.T) {
	g := NewGraph()
	triples := []Triple{
		tr("a", "p", "b"), tr("a", "p", "c"), tr("a", "q", "b"),
		tr("d", "p", "b"), tr("d", "q", "c"),
	}
	g.AddAll(triples)
	a, p, b := IRI("http://e/a"), IRI("http://e/p"), IRI("http://e/b")

	count := func(s, pp, o *Term) int {
		n := 0
		g.Match(s, pp, o, func(Triple) bool { n++; return true })
		return n
	}
	tests := []struct {
		name    string
		s, p, o *Term
		want    int
	}{
		{"spo", &a, &p, &b, 1},
		{"sp?", &a, &p, nil, 2},
		{"?po", nil, &p, &b, 2},
		{"s?o", &a, nil, &b, 2},
		{"s??", &a, nil, nil, 3},
		{"?p?", nil, &p, nil, 3},
		{"??o", nil, nil, &b, 3},
		{"???", nil, nil, nil, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := count(tc.s, tc.p, tc.o); got != tc.want {
				t.Errorf("Match %s = %d, want %d", tc.name, got, tc.want)
			}
			if got := g.MatchCount(tc.s, tc.p, tc.o); got != tc.want {
				t.Errorf("MatchCount %s = %d, want %d", tc.name, got, tc.want)
			}
		})
	}
}

func TestGraphMatchUnknownTerm(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	z := IRI("http://e/zzz")
	n := 0
	g.Match(&z, nil, nil, func(Triple) bool { n++; return true })
	if n != 0 {
		t.Errorf("match on unknown term returned %d results", n)
	}
	if g.MatchCount(nil, nil, &z) != 0 {
		t.Error("MatchCount on unknown term should be 0")
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(tr("a", "p", fmt.Sprintf("o%d", i)))
	}
	n := 0
	g.Match(nil, nil, nil, func(Triple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("iteration did not stop early: %d", n)
	}
}

func TestGraphTriplesSorted(t *testing.T) {
	g := NewGraph()
	g.Add(tr("b", "p", "x"))
	g.Add(tr("a", "q", "x"))
	g.Add(tr("a", "p", "x"))
	ts := g.Triples()
	if len(ts) != 3 {
		t.Fatalf("len = %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Errorf("Triples not sorted at %d: %v >= %v", i, ts[i-1], ts[i])
		}
	}
}

func TestGraphCloneMergeEqual(t *testing.T) {
	g := NewGraph()
	g.AddAll([]Triple{tr("a", "p", "b"), tr("c", "q", "d")})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Add(tr("e", "r", "f"))
	if g.Equal(c) {
		t.Fatal("mutating clone must not affect original")
	}
	if !c.ContainsGraph(g) {
		t.Error("superset should contain subset")
	}
	if g.ContainsGraph(c) {
		t.Error("subset should not contain superset")
	}
	h := NewGraph()
	if n := h.Merge(c); n != 3 {
		t.Errorf("Merge added %d, want 3", n)
	}
	if n := h.Merge(c); n != 0 {
		t.Errorf("re-Merge added %d, want 0", n)
	}
	if !h.Equal(c) {
		t.Error("merged graph should equal source")
	}
}

func TestGraphProjections(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{IRI("http://e/s"), IRI("http://e/p"), Literal("lit")})
	g.Add(Triple{Blank("b"), IRI("http://e/p2"), IRI("http://e/o")})
	if got := len(g.Subjects()); got != 2 {
		t.Errorf("Subjects = %d, want 2", got)
	}
	if got := len(g.Predicates()); got != 2 {
		t.Errorf("Predicates = %d, want 2", got)
	}
	if got := len(g.Objects()); got != 2 {
		t.Errorf("Objects = %d, want 2", got)
	}
	iris := g.IRIs()
	want := []Term{IRI("http://e/o"), IRI("http://e/p"), IRI("http://e/p2"), IRI("http://e/s")}
	if !reflect.DeepEqual(iris, want) {
		t.Errorf("IRIs = %v, want %v", iris, want)
	}
}

func TestGraphLiteralAndBlankTerms(t *testing.T) {
	g := NewGraph()
	lit39 := Literal("39")
	litEn := LangLiteral("39", "en")
	g.Add(Triple{IRI("http://e/x"), IRI("http://e/age"), lit39})
	g.Add(Triple{IRI("http://e/x"), IRI("http://e/age"), litEn})
	if g.Len() != 2 {
		t.Fatalf("distinct literals should produce 2 triples, got %d", g.Len())
	}
	n := 0
	g.Match(nil, nil, &lit39, func(Triple) bool { n++; return true })
	if n != 1 {
		t.Errorf("exact literal match = %d, want 1", n)
	}
}

// Property: a graph behaves as a set of triples — Add/Has agree with a
// reference map implementation under random operation sequences.
func TestGraphSetSemanticsQuick(t *testing.T) {
	type op struct {
		add bool
		t   Triple
	}
	gen := func(vals []reflect.Value, r *rand.Rand) {
		n := 1 + r.Intn(50)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				add: r.Intn(4) != 0, // bias toward adds
				t: Triple{
					S: IRI(fmt.Sprintf("http://e/s%d", r.Intn(5))),
					P: IRI(fmt.Sprintf("http://e/p%d", r.Intn(3))),
					O: IRI(fmt.Sprintf("http://e/o%d", r.Intn(5))),
				},
			}
		}
		vals[0] = reflect.ValueOf(ops)
	}
	f := func(ops []op) bool {
		g := NewGraph()
		ref := make(map[Triple]bool)
		for _, o := range ops {
			if o.add {
				g.Add(o.t)
				ref[o.t] = true
			} else {
				g.Remove(o.t)
				delete(ref, o.t)
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for tt := range ref {
			if !g.Has(tt) {
				return false
			}
		}
		seen := 0
		ok := true
		g.ForEach(func(tt Triple) bool {
			seen++
			if !ref[tt] {
				ok = false
			}
			return true
		})
		return ok && seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{Values: gen, MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNamespacesExpandShorten(t *testing.T) {
	ns := CommonNamespaces()
	got, err := ns.Expand("DB1:Spiderman")
	if err != nil {
		t.Fatal(err)
	}
	if got != "http://db1.example.org/Spiderman" {
		t.Errorf("Expand = %q", got)
	}
	if s := ns.Shorten(got); s != "DB1:Spiderman" {
		t.Errorf("Shorten = %q", s)
	}
	if _, err := ns.Expand("nope:x"); err == nil {
		t.Error("unbound prefix should error")
	}
	if _, err := ns.Expand("nocolon"); err == nil {
		t.Error("non-prefixed name should error")
	}
	// absolute IRIs pass through
	if got, _ := ns.Expand("http://other.org/x"); got != "http://other.org/x" {
		t.Errorf("absolute IRI mangled: %q", got)
	}
	// unknown namespace stays long
	if s := ns.Shorten("http://unknown.org/x"); s != "http://unknown.org/x" {
		t.Errorf("Shorten of unknown = %q", s)
	}
}

func TestNamespacesShortenTermAndClone(t *testing.T) {
	ns := CommonNamespaces()
	if got := ns.ShortenTerm(ns.MustIRI("foaf:age")); got != "foaf:age" {
		t.Errorf("ShortenTerm = %q", got)
	}
	if got := ns.ShortenTerm(Literal("39")); got != `"39"` {
		t.Errorf("ShortenTerm literal = %q", got)
	}
	c := ns.Clone()
	c.Bind("zzz", "http://zzz.org/")
	if _, ok := ns.Lookup("zzz"); ok {
		t.Error("Clone is not independent")
	}
	if len(c.Prefixes()) != len(ns.Prefixes())+1 {
		t.Error("Prefixes length mismatch after clone+bind")
	}
}

func TestNamespacesAmbiguousLocalNotShortened(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("e", "http://e/")
	if got := ns.Shorten("http://e/a/b"); got != "http://e/a/b" {
		t.Errorf("ambiguous local part should not shorten, got %q", got)
	}
}

// TestObjTableDecRefBeforeAddRef pins the refcount race shape directly:
// Add and Remove update the object refcounts only after the new shard
// states are published and the shard locks released, so a Remove of a
// just-published triple can reach decRef before the adding writer's
// addRef — on an object id the stripe has never counted. decRef must grow
// the stripe like addRef does (not index out of range), let the count go
// transiently negative, and report no distinct-object transition on
// either side of the netted-out pair.
func TestObjTableDecRefBeforeAddRef(t *testing.T) {
	var ot objTable
	o := id(3*termStripes + 5) // stripe-local index 3 on an empty stripe
	if ot.decRef(o) {
		t.Fatal("decRef of a never-counted id reported a 1→0 transition")
	}
	if ot.addRef(o) {
		t.Fatal("addRef restoring a transient negative reported 0→1")
	}
	// the racing pair netted out: the next add/remove cycle transitions
	if !ot.addRef(o) {
		t.Fatal("addRef after the netted-out pair did not report 0→1")
	}
	if !ot.decRef(o) {
		t.Fatal("decRef did not report 1→0")
	}
}
