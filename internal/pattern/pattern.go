// Package pattern implements the graph pattern query language of Section 2.1
// of the paper: triple patterns over (I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V),
// conjunction (AND), mappings µ from variables to terms, compatibility and
// joins of mapping sets, the evaluation function ⟦GP⟧_D (Definition 1), and
// the two query semantics Q_D (certain-answer style, dropping blank nodes)
// and Q*_D (including blank nodes).
//
// Graph pattern queries are the "conjunctive fragment" of SPARQL; package
// sparql translates between the concrete syntax and this representation.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Elem is one position of a triple pattern: either a variable or a constant
// RDF term. Elem is comparable.
type Elem struct {
	varName string
	term    rdf.Term
}

// V returns a variable element. Names do not carry the leading "?".
func V(name string) Elem { return Elem{varName: name} }

// C returns a constant element wrapping an RDF term.
func C(t rdf.Term) Elem { return Elem{term: t} }

// IsVar reports whether the element is a variable.
func (e Elem) IsVar() bool { return e.varName != "" }

// Var returns the variable name, or "" for constants.
func (e Elem) Var() string { return e.varName }

// Term returns the constant term; it is the zero Term for variables.
func (e Elem) Term() rdf.Term { return e.term }

// String renders the element in SPARQL-like syntax.
func (e Elem) String() string {
	if e.IsVar() {
		return "?" + e.varName
	}
	return e.term.String()
}

// TriplePattern is a tuple from (I ∪ L ∪ V) × (I ∪ V) × (I ∪ L ∪ V).
type TriplePattern struct {
	S, P, O Elem
}

// TP constructs a triple pattern.
func TP(s, p, o Elem) TriplePattern { return TriplePattern{S: s, P: p, O: o} }

// String renders the pattern in SPARQL-like syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Elems returns the three positions in S, P, O order.
func (tp TriplePattern) Elems() [3]Elem { return [3]Elem{tp.S, tp.P, tp.O} }

// Vars returns the set of variable names in the pattern, sorted.
func (tp TriplePattern) Vars() []string {
	set := make(map[string]struct{}, 3)
	for _, e := range tp.Elems() {
		if e.IsVar() {
			set[e.varName] = struct{}{}
		}
	}
	return sortedKeys(set)
}

// Apply substitutes bound variables from µ, leaving unbound ones in place.
func (tp TriplePattern) Apply(mu Binding) TriplePattern {
	sub := func(e Elem) Elem {
		if e.IsVar() {
			if t, ok := mu[e.varName]; ok {
				return C(t)
			}
		}
		return e
	}
	return TriplePattern{S: sub(tp.S), P: sub(tp.P), O: sub(tp.O)}
}

// Ground instantiates the pattern under µ into a concrete triple. It returns
// false if any position remains a variable.
func (tp TriplePattern) Ground(mu Binding) (rdf.Triple, bool) {
	g := tp.Apply(mu)
	if g.S.IsVar() || g.P.IsVar() || g.O.IsVar() {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: g.S.term, P: g.P.term, O: g.O.term}, true
}

// GraphPattern is a conjunction (AND) of triple patterns. The paper defines
// graph patterns recursively; since AND is associative and commutative on
// mapping sets, the flattened form is equivalent.
type GraphPattern []TriplePattern

// Vars returns var(GP): all variable names, sorted.
func (gp GraphPattern) Vars() []string {
	set := make(map[string]struct{})
	for _, tp := range gp {
		for _, e := range tp.Elems() {
			if e.IsVar() {
				set[e.varName] = struct{}{}
			}
		}
	}
	return sortedKeys(set)
}

// Constants returns every constant term occurring in the pattern, sorted.
func (gp GraphPattern) Constants() []rdf.Term {
	set := make(map[rdf.Term]struct{})
	for _, tp := range gp {
		for _, e := range tp.Elems() {
			if !e.IsVar() {
				set[e.term] = struct{}{}
			}
		}
	}
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the pattern as a SPARQL-style basic graph pattern.
func (gp GraphPattern) String() string {
	parts := make([]string, len(gp))
	for i, tp := range gp {
		parts[i] = tp.String()
	}
	return strings.Join(parts, " . ")
}

// Apply substitutes µ into every triple pattern.
func (gp GraphPattern) Apply(mu Binding) GraphPattern {
	out := make(GraphPattern, len(gp))
	for i, tp := range gp {
		out[i] = tp.Apply(mu)
	}
	return out
}

// Query is a graph pattern query q(x) ← GP of arity len(Free). Variables of
// GP not listed in Free are existentially quantified.
type Query struct {
	// Free lists the free (answer) variables x₁…xₙ in order.
	Free []string
	// GP is the query body.
	GP GraphPattern
}

// NewQuery constructs a query, validating that every free variable occurs in
// the body as the definition in Section 2.1 requires.
func NewQuery(free []string, gp GraphPattern) (Query, error) {
	vars := make(map[string]struct{})
	for _, v := range gp.Vars() {
		vars[v] = struct{}{}
	}
	for _, f := range free {
		if _, ok := vars[f]; !ok {
			return Query{}, fmt.Errorf("pattern: free variable ?%s does not appear in the graph pattern", f)
		}
	}
	return Query{Free: free, GP: gp}, nil
}

// MustQuery is NewQuery but panics on error; for tests and fixtures.
func MustQuery(free []string, gp GraphPattern) Query {
	q, err := NewQuery(free, gp)
	if err != nil {
		panic(err)
	}
	return q
}

// Arity returns the number of free variables.
func (q Query) Arity() int { return len(q.Free) }

// IsBoolean reports whether the query has no free variables.
func (q Query) IsBoolean() bool { return len(q.Free) == 0 }

// ExistVars returns the existentially quantified variables, sorted.
func (q Query) ExistVars() []string {
	free := make(map[string]struct{}, len(q.Free))
	for _, f := range q.Free {
		free[f] = struct{}{}
	}
	var out []string
	for _, v := range q.GP.Vars() {
		if _, ok := free[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// String renders the query in rule notation, e.g. "q(?x,?y) <- ?x p ?y".
func (q Query) String() string {
	vars := make([]string, len(q.Free))
	for i, f := range q.Free {
		vars[i] = "?" + f
	}
	return "q(" + strings.Join(vars, ",") + ") <- " + q.GP.String()
}

// Substitute binds the i-th free variable to tuple[i] throughout the body,
// producing a boolean query (Example 3's reduction of answer checking to
// boolean query answering). The tuple length must equal the arity.
func (q Query) Substitute(tuple Tuple) (Query, error) {
	if len(tuple) != q.Arity() {
		return Query{}, fmt.Errorf("pattern: tuple arity %d does not match query arity %d", len(tuple), q.Arity())
	}
	mu := make(Binding, len(tuple))
	for i, f := range q.Free {
		mu[f] = tuple[i]
	}
	return Query{Free: nil, GP: q.GP.Apply(mu)}, nil
}

// Rename returns a copy of the query with every variable v renamed to
// prefix+v. Used to avoid capture when composing queries from different
// mapping assertions.
func (q Query) Rename(prefix string) Query {
	ren := func(e Elem) Elem {
		if e.IsVar() {
			return V(prefix + e.varName)
		}
		return e
	}
	gp := make(GraphPattern, len(q.GP))
	for i, tp := range q.GP {
		gp[i] = TriplePattern{S: ren(tp.S), P: ren(tp.P), O: ren(tp.O)}
	}
	free := make([]string, len(q.Free))
	for i, f := range q.Free {
		free[i] = prefix + f
	}
	return Query{Free: free, GP: gp}
}

// SubjQ returns subjQ(c) := q(xpred, xobj) ← (c, ?xpred, ?xobj).
func SubjQ(c rdf.Term) Query {
	return Query{Free: []string{"xpred", "xobj"},
		GP: GraphPattern{TP(C(c), V("xpred"), V("xobj"))}}
}

// PredQ returns predQ(c) := q(xsubj, xobj) ← (?xsubj, c, ?xobj).
func PredQ(c rdf.Term) Query {
	return Query{Free: []string{"xsubj", "xobj"},
		GP: GraphPattern{TP(V("xsubj"), C(c), V("xobj"))}}
}

// ObjQ returns objQ(c) := q(xsubj, xpred) ← (?xsubj, ?xpred, c).
func ObjQ(c rdf.Term) Query {
	return Query{Free: []string{"xsubj", "xpred"},
		GP: GraphPattern{TP(V("xsubj"), V("xpred"), C(c))}}
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
