package pattern

import (
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/rdf"
)

// Binding is a mapping µ : V → (I ∪ B ∪ L), a partial function from variable
// names to terms. dom(µ) is the key set.
type Binding map[string]rdf.Term

// Clone returns an independent copy of the binding.
func (mu Binding) Clone() Binding {
	out := make(Binding, len(mu))
	for k, v := range mu {
		out[k] = v
	}
	return out
}

// Compatible reports whether µ₁ and µ₂ agree on every shared variable, i.e.
// whether µ₁ ∪ µ₂ is itself a mapping.
func Compatible(mu1, mu2 Binding) bool {
	// iterate over the smaller map
	if len(mu2) < len(mu1) {
		mu1, mu2 = mu2, mu1
	}
	for k, v := range mu1 {
		if w, ok := mu2[k]; ok && w != v {
			return false
		}
	}
	return true
}

// Union returns µ₁ ∪ µ₂; the caller must have checked compatibility.
func Union(mu1, mu2 Binding) Binding {
	out := make(Binding, len(mu1)+len(mu2))
	for k, v := range mu1 {
		out[k] = v
	}
	for k, v := range mu2 {
		out[k] = v
	}
	return out
}

// Join computes Ω₁ ⋈ Ω₂ = {µ₁ ∪ µ₂ | µ₁ ∈ Ω₁, µ₂ ∈ Ω₂ compatible}. It uses a
// hash join on the shared variables when any exist, degrading to a cross
// product otherwise.
func Join(om1, om2 []Binding) []Binding {
	if len(om1) == 0 || len(om2) == 0 {
		return nil
	}
	// A hash join on the shared variables is only sound when every binding
	// in a set has the same domain (true for ⟦·⟧ evaluation, where
	// dom(µ) = var(GP)); otherwise fall back to a nested loop.
	if !UniformDomain(om1) || !UniformDomain(om2) {
		var out []Binding
		for _, a := range om1 {
			for _, b := range om2 {
				if Compatible(a, b) {
					out = append(out, Union(a, b))
				}
			}
		}
		return out
	}
	shared := SharedVars(om1[0], om2[0])
	if len(shared) == 0 {
		out := make([]Binding, 0, len(om1)*len(om2))
		for _, a := range om1 {
			for _, b := range om2 {
				out = append(out, Union(a, b))
			}
		}
		return out
	}
	// hash join: bucket om2 by shared-variable values
	idx := make(map[string][]Binding, len(om2))
	for _, b := range om2 {
		idx[joinKey(b, shared)] = append(idx[joinKey(b, shared)], b)
	}
	var out []Binding
	for _, a := range om1 {
		for _, b := range idx[joinKey(a, shared)] {
			if Compatible(a, b) {
				out = append(out, Union(a, b))
			}
		}
	}
	return out
}

// UniformDomain reports whether every binding in the set has the same
// domain — the soundness condition for hashing on shared variables. Shared
// with internal/plan's hash join so the guard cannot diverge from Join's.
func UniformDomain(om []Binding) bool {
	for _, b := range om[1:] {
		if len(b) != len(om[0]) {
			return false
		}
		for k := range b {
			if _, ok := om[0][k]; !ok {
				return false
			}
		}
	}
	return true
}

// SharedVars returns the sorted variables bound by both µ₁ and µ₂.
func SharedVars(a, b Binding) []string {
	var out []string
	for k := range a {
		if _, ok := b[k]; ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// BindingKey returns a canonical key for µ restricted to vars. Every
// component is length-prefixed, so separator characters occurring inside
// IRIs or literals cannot make distinct bindings collide. An unbound
// variable encodes as "-:" (no digit ever precedes the colon of a bound
// component's prefix, so the marker is unambiguous).
func BindingKey(mu Binding, vars []string) string {
	var b strings.Builder
	for _, v := range vars {
		if t, ok := mu[v]; ok {
			appendLenPrefixed(&b, t.String())
		} else {
			b.WriteString("-:")
		}
	}
	return b.String()
}

func appendLenPrefixed(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// DomainKey returns a canonical key for µ covering both its domain and its
// values (variable names and terms, all length-prefixed), so bindings with
// different domains cannot collide. Used for duplicate elimination over
// streams whose rows may bind different variable sets.
func DomainKey(mu Binding) string {
	vars := make([]string, 0, len(mu))
	for v := range mu {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		appendLenPrefixed(&b, v)
		appendLenPrefixed(&b, mu[v].String())
	}
	return b.String()
}

func joinKey(mu Binding, vars []string) string { return BindingKey(mu, vars) }

// BindTriple unifies a triple pattern with a concrete triple, returning
// the mapping µ with µ(tp) = t, or false on a constant mismatch or a
// repeated-variable disagreement. It is the single implementation of this
// invariant, shared by the evaluators here, the chase's semi-naive
// matching, and the plan operators' index probes.
func BindTriple(tp TriplePattern, t rdf.Triple) (Binding, bool) {
	mu := make(Binding, 3)
	bind := func(e Elem, val rdf.Term) bool {
		if !e.IsVar() {
			return e.term == val
		}
		if prev, ok := mu[e.varName]; ok {
			return prev == val
		}
		mu[e.varName] = val
		return true
	}
	if !bind(tp.S, t.S) || !bind(tp.P, t.P) || !bind(tp.O, t.O) {
		return nil, false
	}
	return mu, true
}

// EvalTriplePattern computes ⟦t⟧_D for a single triple pattern: the set of
// mappings µ with dom(µ) = var(t) and µ(t) ∈ D (Definition 1, case 1).
func EvalTriplePattern(g rdf.Source, tp TriplePattern) []Binding {
	var sp, pp, op *rdf.Term
	if !tp.S.IsVar() {
		t := tp.S.Term()
		sp = &t
	}
	if !tp.P.IsVar() {
		t := tp.P.Term()
		pp = &t
	}
	if !tp.O.IsVar() {
		t := tp.O.Term()
		op = &t
	}
	var out []Binding
	g.Match(sp, pp, op, func(t rdf.Triple) bool {
		if mu, ok := BindTriple(tp, t); ok {
			out = append(out, mu)
		}
		return true
	})
	return out
}

// EvalNaive computes ⟦GP⟧_D exactly as Definition 1 states: evaluate each
// triple pattern independently, then fold the results with ⋈ in textual
// order. Kept as the executable specification; Eval is the optimised
// equivalent used elsewhere.
func EvalNaive(g rdf.Source, gp GraphPattern) []Binding {
	if len(gp) == 0 {
		return []Binding{{}}
	}
	om := EvalTriplePattern(g, gp[0])
	for _, tp := range gp[1:] {
		om = Join(om, EvalTriplePattern(g, tp))
		if len(om) == 0 {
			return nil
		}
	}
	return om
}

// planned, when non-nil, is the evaluator Eval delegates to. The streaming,
// cost-based executor of internal/plan installs itself here at init time
// (it cannot be imported from this package, which its operators depend on),
// so every program linking internal/plan — the library root, the commands,
// and all answering strategies — routes Eval through the planner. Held in
// an atomic so a (test-time) swap cannot race with parallel evaluation.
var planned atomic.Pointer[func(rdf.Source, GraphPattern) []Binding]

// SetPlannedEval installs the optimised evaluator used by Eval. Passing nil
// restores the built-in greedy strategy (EvalGreedy).
func SetPlannedEval(f func(rdf.Source, GraphPattern) []Binding) {
	if f == nil {
		planned.Store(nil)
		return
	}
	planned.Store(&f)
}

// Eval computes ⟦GP⟧_D. When the plan-based executor is linked it is the
// default path (see SetPlannedEval); otherwise evaluation falls back to
// EvalGreedy. The result is set-equivalent to EvalNaive either way.
func Eval(g rdf.Source, gp GraphPattern) []Binding {
	if f := planned.Load(); f != nil {
		return (*f)(g, gp)
	}
	return evalOrdered(g, gp, true)
}

// EvalGreedy computes ⟦GP⟧_D using index nested-loop evaluation with greedy
// selectivity-based join ordering: at each step the pattern with the fewest
// estimated matches under the current bindings is evaluated next. Kept as
// the pre-planner strategy for the join-ordering ablation.
func EvalGreedy(g rdf.Source, gp GraphPattern) []Binding {
	return evalOrdered(g, gp, true)
}

// EvalTextualOrder evaluates with index nested loops but in textual pattern
// order, without reordering. Used by the join-ordering ablation benchmark.
func EvalTextualOrder(g rdf.Source, gp GraphPattern) []Binding {
	return evalOrdered(g, gp, false)
}

func evalOrdered(g rdf.Source, gp GraphPattern, reorder bool) []Binding {
	if len(gp) == 0 {
		return []Binding{{}}
	}
	remaining := make([]TriplePattern, len(gp))
	copy(remaining, gp)
	results := []Binding{{}}
	for len(remaining) > 0 && len(results) > 0 {
		pick := 0
		if reorder {
			// estimate cardinality of each remaining pattern under the
			// domain of variables bound so far (using the first binding as
			// a representative for which vars are bound)
			bound := results[0]
			best := -1
			for i, tp := range remaining {
				est := estimate(g, tp, bound)
				if best == -1 || est < best {
					best, pick = est, i
				}
			}
		}
		tp := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		var next []Binding
		for _, mu := range results {
			next = append(next, extend(g, tp, mu)...)
		}
		results = next
	}
	return results
}

// extend evaluates tp with mu's bindings substituted and unions each match
// into mu.
func extend(g rdf.Source, tp TriplePattern, mu Binding) []Binding {
	inst := tp.Apply(mu)
	matches := EvalTriplePattern(g, inst)
	out := make([]Binding, 0, len(matches))
	for _, m := range matches {
		out = append(out, Union(mu, m))
	}
	return out
}

func estimate(g rdf.Source, tp TriplePattern, bound Binding) int {
	inst := tp.Apply(bound)
	var sp, pp, op *rdf.Term
	if !inst.S.IsVar() {
		t := inst.S.Term()
		sp = &t
	}
	if !inst.P.IsVar() {
		t := inst.P.Term()
		pp = &t
	}
	if !inst.O.IsVar() {
		t := inst.O.Term()
		op = &t
	}
	return g.MatchCount(sp, pp, op)
}

// Tuple is an answer tuple of RDF terms.
type Tuple []rdf.Term

// Key returns a canonical string key for set membership of tuples. Each
// component is length-prefixed so terms containing separator characters
// cannot make distinct tuples collide.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, x := range t {
		appendLenPrefixed(&b, x.String())
	}
	return b.String()
}

// Compare orders tuples component-wise by Term.Compare, shorter tuples
// first on a common prefix. Sorted output everywhere uses this ordering.
func (t Tuple) Compare(u Tuple) int {
	for i := range t {
		if i >= len(u) {
			return 1
		}
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	if len(t) < len(u) {
		return -1
	}
	return 0
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// HasBlank reports whether any component is a blank node.
func (t Tuple) HasBlank() bool {
	for _, x := range t {
		if x.IsBlank() {
			return true
		}
	}
	return false
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, x := range t {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TupleSet is a set of tuples with deterministic iteration via Sorted.
type TupleSet struct {
	m map[string]Tuple
}

// NewTupleSet returns an empty set.
func NewTupleSet() *TupleSet { return &TupleSet{m: make(map[string]Tuple)} }

// Add inserts the tuple, reporting whether it was new.
func (s *TupleSet) Add(t Tuple) bool {
	k := t.Key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = t
	return true
}

// Has reports membership.
func (s *TupleSet) Has(t Tuple) bool {
	_, ok := s.m[t.Key()]
	return ok
}

// Len returns the number of tuples.
func (s *TupleSet) Len() int { return len(s.m) }

// Merge adds every tuple of other into s. Used to combine the per-branch
// results of a parallel UCQ union deterministically.
func (s *TupleSet) Merge(other *TupleSet) {
	for k, t := range other.m {
		s.m[k] = t
	}
}

// Minus returns the tuples of s not present in other, sorted.
func (s *TupleSet) Minus(other *TupleSet) []Tuple {
	var out []Tuple
	for k, t := range s.m {
		if _, ok := other.m[k]; !ok {
			out = append(out, t)
		}
	}
	sortTuples(out)
	return out
}

// SubsetOf reports whether every tuple of s is in other.
func (s *TupleSet) SubsetOf(other *TupleSet) bool {
	for k := range s.m {
		if _, ok := other.m[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s *TupleSet) Equal(other *TupleSet) bool {
	return len(s.m) == len(other.m) && s.SubsetOf(other)
}

// Sorted returns the tuples in deterministic order.
func (s *TupleSet) Sorted() []Tuple {
	out := make([]Tuple, 0, len(s.m))
	for _, t := range s.m {
		out = append(out, t)
	}
	sortTuples(out)
	return out
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// EvalQuery computes Q_D: the answer tuples whose components are all in
// I ∪ L (blank-node tuples are dropped, matching the semantics of labelled
// nulls).
func EvalQuery(g rdf.Source, q Query) *TupleSet {
	return evalQuery(g, q, false)
}

// EvalQueryStar computes Q*_D: like EvalQuery but tuples may contain blank
// nodes. Used for the semantics of equivalence mappings (Definition 2).
func EvalQueryStar(g rdf.Source, q Query) *TupleSet {
	return evalQuery(g, q, true)
}

func evalQuery(g rdf.Source, q Query, star bool) *TupleSet {
	out := NewTupleSet()
	for _, mu := range Eval(g, q.GP) {
		tuple := make(Tuple, len(q.Free))
		ok := true
		for i, f := range q.Free {
			t, bound := mu[f]
			if !bound {
				ok = false
				break
			}
			if !star && t.IsBlank() {
				ok = false
				break
			}
			tuple[i] = t
		}
		if ok {
			out.Add(tuple)
		}
	}
	return out
}

// Ask evaluates a boolean query: true iff the body matches the graph.
func Ask(g rdf.Source, q Query) bool {
	return len(Eval(g, q.GP)) > 0
}
