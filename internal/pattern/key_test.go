package pattern

import (
	"testing"

	"repro/internal/rdf"
)

// TestTupleKeyCollisionFree: under the old space-separated encoding both
// tuples rendered as "<a> <b> "; the length prefix keeps them apart.
func TestTupleKeyCollisionFree(t *testing.T) {
	t1 := Tuple{rdf.IRI("a"), rdf.IRI("b")}
	t2 := Tuple{rdf.IRI("a> <b")}
	if t1.Key() == t2.Key() {
		t.Fatalf("tuple keys collide: %q", t1.Key())
	}
	s := NewTupleSet()
	s.Add(t1)
	s.Add(t2)
	if s.Len() != 2 {
		t.Fatalf("tuple set conflated distinct tuples: %v", s.Sorted())
	}
}

// TestBindingKeyCollisionFree: under the old "|"-separated encoding, a
// single IRI containing ">|<" collided with two separate IRIs.
func TestBindingKeyCollisionFree(t *testing.T) {
	vars := []string{"x", "y"}
	mu1 := Binding{"x": rdf.IRI("a>|<b")}
	mu2 := Binding{"x": rdf.IRI("a"), "y": rdf.IRI("b")}
	if BindingKey(mu1, vars) == BindingKey(mu2, vars) {
		t.Fatalf("binding keys collide: %q", BindingKey(mu1, vars))
	}
}

func TestBindingKeyFormat(t *testing.T) {
	mu := Binding{"x": rdf.IRI("a")}
	if got, want := BindingKey(mu, []string{"x", "y"}), "3:<a>-:"; got != want {
		t.Errorf("BindingKey = %q, want %q", got, want)
	}
}

// TestJoinKeyedCorrectly exercises the hash-join path of Join with values
// that would have collided under the old separator scheme.
func TestJoinKeyedCorrectly(t *testing.T) {
	a := rdf.IRI("a>|<b")
	om1 := []Binding{{"x": a, "y": rdf.IRI("c")}}
	om2 := []Binding{{"x": a, "z": rdf.IRI("d")}}
	got := Join(om1, om2)
	if len(got) != 1 {
		t.Fatalf("join size = %d, want 1: %v", len(got), got)
	}
	om3 := []Binding{{"x": rdf.IRI("other"), "z": rdf.IRI("d")}}
	if res := Join(om1, om3); len(res) != 0 {
		t.Fatalf("join of incompatible bindings = %v, want empty", res)
	}
}
