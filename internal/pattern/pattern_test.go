package pattern

import (
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/turtle"
)

func iri(s string) rdf.Term { return rdf.IRI("http://e/" + s) }

func testGraph() *rdf.Graph {
	return turtle.MustParseGraph(`
@prefix e: <http://e/> .
e:spiderman e:starring e:toby , e:kirsten .
e:toby e:artist e:tobyActor .
e:kirsten e:artist e:kirstenActor .
e:tobyActor e:age "39" .
e:kirstenActor e:age "32" .
e:pleasantville e:starring e:toby .
`)
}

func TestElemBasics(t *testing.T) {
	v := V("x")
	c := C(iri("a"))
	if !v.IsVar() || v.Var() != "x" || v.String() != "?x" {
		t.Errorf("variable elem broken: %v", v)
	}
	if c.IsVar() || c.Term() != iri("a") {
		t.Errorf("constant elem broken: %v", c)
	}
}

func TestTriplePatternVarsAndApply(t *testing.T) {
	tp := TP(V("x"), C(iri("p")), V("y"))
	if got := tp.Vars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("Vars = %v", got)
	}
	applied := tp.Apply(Binding{"x": iri("a")})
	if applied.S.IsVar() || applied.S.Term() != iri("a") || !applied.O.IsVar() {
		t.Errorf("Apply = %v", applied)
	}
	tr, ok := tp.Ground(Binding{"x": iri("a"), "y": iri("b")})
	if !ok || tr != (rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}) {
		t.Errorf("Ground = %v, %v", tr, ok)
	}
	if _, ok := tp.Ground(Binding{"x": iri("a")}); ok {
		t.Error("Ground with unbound var should fail")
	}
}

func TestCompatibleAndUnion(t *testing.T) {
	a := Binding{"x": iri("1"), "y": iri("2")}
	b := Binding{"y": iri("2"), "z": iri("3")}
	c := Binding{"y": iri("9")}
	if !Compatible(a, b) {
		t.Error("a and b share y=2, should be compatible")
	}
	if Compatible(a, c) {
		t.Error("a and c disagree on y")
	}
	u := Union(a, b)
	if len(u) != 3 || u["z"] != iri("3") || u["x"] != iri("1") {
		t.Errorf("Union = %v", u)
	}
	if !Compatible(Binding{}, a) || !Compatible(a, Binding{}) {
		t.Error("empty binding is compatible with everything")
	}
}

func TestJoinHashAndCross(t *testing.T) {
	om1 := []Binding{{"x": iri("1"), "y": iri("a")}, {"x": iri("2"), "y": iri("b")}}
	om2 := []Binding{{"y": iri("a"), "z": iri("A")}, {"y": iri("c"), "z": iri("C")}}
	got := Join(om1, om2)
	if len(got) != 1 || got[0]["x"] != iri("1") || got[0]["z"] != iri("A") {
		t.Errorf("hash join = %v", got)
	}
	// cross product when no shared vars
	om3 := []Binding{{"w": iri("w1")}, {"w": iri("w2")}}
	cross := Join(om1, om3)
	if len(cross) != 4 {
		t.Errorf("cross join size = %d, want 4", len(cross))
	}
	if Join(nil, om1) != nil || Join(om1, nil) != nil {
		t.Error("join with empty set should be empty")
	}
}

func TestJoinMixedDomains(t *testing.T) {
	// om2 bindings have different domains: hash join would be unsound,
	// nested-loop fallback must kick in.
	om1 := []Binding{{"x": iri("1")}}
	om2 := []Binding{{"x": iri("1"), "y": iri("a")}, {"y": iri("b")}}
	got := Join(om1, om2)
	if len(got) != 2 {
		t.Fatalf("mixed-domain join = %v, want 2 results", got)
	}
}

func TestJoinCommutativeOnEvalSets(t *testing.T) {
	g := testGraph()
	om1 := EvalTriplePattern(g, TP(V("f"), C(iri("starring")), V("s")))
	om2 := EvalTriplePattern(g, TP(V("s"), C(iri("artist")), V("a")))
	ab := Join(om1, om2)
	ba := Join(om2, om1)
	if len(ab) != len(ba) {
		t.Fatalf("join not commutative in size: %d vs %d", len(ab), len(ba))
	}
	key := func(om []Binding) map[string]int {
		m := make(map[string]int)
		for _, mu := range om {
			tu := Tuple{mu["f"], mu["s"], mu["a"]}
			m[tu.Key()]++
		}
		return m
	}
	if !reflect.DeepEqual(key(ab), key(ba)) {
		t.Error("join not commutative in content")
	}
}

func TestEvalTriplePattern(t *testing.T) {
	g := testGraph()
	om := EvalTriplePattern(g, TP(C(iri("spiderman")), C(iri("starring")), V("z")))
	if len(om) != 2 {
		t.Fatalf("got %d bindings, want 2", len(om))
	}
	for _, mu := range om {
		if len(mu) != 1 {
			t.Errorf("dom(µ) should be {z}, got %v", mu)
		}
	}
}

func TestEvalTriplePatternRepeatedVar(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("a")})
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	om := EvalTriplePattern(g, TP(V("x"), C(iri("p")), V("x")))
	if len(om) != 1 || om[0]["x"] != iri("a") {
		t.Errorf("repeated variable filter failed: %v", om)
	}
}

func TestEvalMatchesNaive(t *testing.T) {
	g := testGraph()
	gp := GraphPattern{
		TP(C(iri("spiderman")), C(iri("starring")), V("z")),
		TP(V("z"), C(iri("artist")), V("x")),
		TP(V("x"), C(iri("age")), V("y")),
	}
	check := func(name string, om []Binding) {
		if len(om) != 2 {
			t.Fatalf("%s: got %d bindings, want 2: %v", name, len(om), om)
		}
		seen := map[string]bool{}
		for _, mu := range om {
			seen[mu["y"].Value()] = true
		}
		if !seen["39"] || !seen["32"] {
			t.Errorf("%s: wrong ages: %v", name, om)
		}
	}
	check("naive", EvalNaive(g, gp))
	check("ordered", Eval(g, gp))
	check("textual", EvalTextualOrder(g, gp))
}

func TestEvalEmptyPattern(t *testing.T) {
	g := testGraph()
	if om := Eval(g, nil); len(om) != 1 || len(om[0]) != 0 {
		t.Errorf("empty GP should yield the single empty mapping, got %v", om)
	}
	if om := EvalNaive(g, nil); len(om) != 1 {
		t.Errorf("naive empty GP = %v", om)
	}
}

func TestEvalNoMatch(t *testing.T) {
	g := testGraph()
	gp := GraphPattern{TP(C(iri("nonexistent")), V("p"), V("o"))}
	if om := Eval(g, gp); len(om) != 0 {
		t.Errorf("expected no matches, got %v", om)
	}
}

func TestQueryConstruction(t *testing.T) {
	gp := GraphPattern{TP(V("x"), C(iri("p")), V("y"))}
	q, err := NewQuery([]string{"x"}, gp)
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 1 || q.IsBoolean() {
		t.Error("arity bookkeeping wrong")
	}
	if got := q.ExistVars(); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("ExistVars = %v", got)
	}
	if _, err := NewQuery([]string{"zzz"}, gp); err == nil {
		t.Error("free var not in body should be rejected")
	}
}

func TestQuerySemantics(t *testing.T) {
	g := testGraph()
	q := MustQuery([]string{"x", "y"}, GraphPattern{
		TP(C(iri("spiderman")), C(iri("starring")), V("z")),
		TP(V("z"), C(iri("artist")), V("x")),
		TP(V("x"), C(iri("age")), V("y")),
	})
	res := EvalQuery(g, q)
	if res.Len() != 2 {
		t.Fatalf("got %d answers: %v", res.Len(), res.Sorted())
	}
	want := Tuple{iri("tobyActor"), rdf.Literal("39")}
	if !res.Has(want) {
		t.Errorf("missing tuple %v", want)
	}
}

func TestQueryBlankSemantics(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: rdf.Blank("n1")})
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	q := MustQuery([]string{"o"}, GraphPattern{TP(C(iri("a")), C(iri("p")), V("o"))})
	plain := EvalQuery(g, q)
	star := EvalQueryStar(g, q)
	if plain.Len() != 1 {
		t.Errorf("Q_D must drop blank tuples, got %v", plain.Sorted())
	}
	if star.Len() != 2 {
		t.Errorf("Q*_D must keep blank tuples, got %v", star.Sorted())
	}
}

func TestQuerySubstituteBoolean(t *testing.T) {
	g := testGraph()
	q := MustQuery([]string{"x", "y"}, GraphPattern{
		TP(C(iri("spiderman")), C(iri("starring")), V("z")),
		TP(V("z"), C(iri("artist")), V("x")),
		TP(V("x"), C(iri("age")), V("y")),
	})
	bq, err := q.Substitute(Tuple{iri("tobyActor"), rdf.Literal("39")})
	if err != nil {
		t.Fatal(err)
	}
	if !bq.IsBoolean() {
		t.Fatal("substituted query should be boolean")
	}
	if !Ask(g, bq) {
		t.Error("true tuple should verify")
	}
	bq2, _ := q.Substitute(Tuple{iri("tobyActor"), rdf.Literal("99")})
	if Ask(g, bq2) {
		t.Error("false tuple should not verify")
	}
	if _, err := q.Substitute(Tuple{iri("a")}); err == nil {
		t.Error("wrong arity should error")
	}
}

func TestQueryRename(t *testing.T) {
	q := MustQuery([]string{"x"}, GraphPattern{TP(V("x"), C(iri("p")), V("y"))})
	r := q.Rename("m0_")
	if r.Free[0] != "m0_x" {
		t.Errorf("free var not renamed: %v", r.Free)
	}
	if r.GP[0].S.Var() != "m0_x" || r.GP[0].O.Var() != "m0_y" {
		t.Errorf("body vars not renamed: %v", r.GP)
	}
	if r.GP[0].P.IsVar() {
		t.Error("constant should be untouched")
	}
}

func TestSpecialQueries(t *testing.T) {
	g := testGraph()
	sq := SubjQ(iri("spiderman"))
	res := EvalQueryStar(g, sq)
	if res.Len() != 2 {
		t.Errorf("subjQ(spiderman) = %v", res.Sorted())
	}
	pq := PredQ(iri("age"))
	if EvalQueryStar(g, pq).Len() != 2 {
		t.Errorf("predQ(age) = %v", EvalQueryStar(g, pq).Sorted())
	}
	oq := ObjQ(iri("toby"))
	if EvalQueryStar(g, oq).Len() != 2 {
		t.Errorf("objQ(toby) = %v", EvalQueryStar(g, oq).Sorted())
	}
}

func TestTupleSetOps(t *testing.T) {
	s1 := NewTupleSet()
	s2 := NewTupleSet()
	a := Tuple{iri("a")}
	b := Tuple{iri("b")}
	s1.Add(a)
	s1.Add(b)
	s2.Add(a)
	if !s2.SubsetOf(s1) || s1.SubsetOf(s2) {
		t.Error("subset logic wrong")
	}
	diff := s1.Minus(s2)
	if len(diff) != 1 || !diff[0].Equal(b) {
		t.Errorf("Minus = %v", diff)
	}
	if s1.Equal(s2) {
		t.Error("unequal sets compare equal")
	}
	s2.Add(b)
	if !s1.Equal(s2) {
		t.Error("equal sets compare unequal")
	}
	if s1.Add(a) {
		t.Error("duplicate Add should report false")
	}
}

func TestTupleHelpers(t *testing.T) {
	tu := Tuple{iri("a"), rdf.Blank("b")}
	if !tu.HasBlank() {
		t.Error("HasBlank missed blank")
	}
	if tu.Equal(Tuple{iri("a")}) {
		t.Error("length mismatch should not be equal")
	}
	if tu.String() == "" || tu.Key() == "" {
		t.Error("render helpers empty")
	}
}

func TestQueryStringForms(t *testing.T) {
	q := MustQuery([]string{"x"}, GraphPattern{TP(V("x"), C(iri("p")), C(rdf.Literal("39")))})
	s := q.String()
	if s != `q(?x) <- ?x <http://e/p> "39"` {
		t.Errorf("String = %q", s)
	}
}

func TestGraphPatternConstants(t *testing.T) {
	gp := GraphPattern{
		TP(V("x"), C(iri("p")), C(rdf.Literal("39"))),
		TP(C(iri("a")), C(iri("p")), V("y")),
	}
	cs := gp.Constants()
	if len(cs) != 3 {
		t.Errorf("Constants = %v", cs)
	}
}
