// Package rps is a peer-to-peer semantic integration framework for Linked
// Data, reproducing Dimartino, Calì, Poulovassilis and Wood, "Peer-to-Peer
// Semantic Integration of Linked Data" (EDBT/ICDT 2015 workshops).
//
// An RDF Peer System (RPS) integrates heterogeneous RDF sources without a
// centralised schema: each peer is described by the set of IRIs it uses,
// and the semantic relationships between peers are expressed by graph
// mapping assertions (Q ⤳ Q′, containment of graph pattern queries) and
// equivalence mappings (c ≡ₑ c′, the semantics of owl:sameAs). Query
// answering returns the certain answers: the tuples true in every database
// closed under the mappings.
//
// The package offers three answering strategies:
//
//   - Materialisation (Algorithm 1): chase the stored data to a universal
//     solution and evaluate queries over it. Always complete, PTIME in the
//     data (Theorem 1). See Materialize and CertainAnswers.
//   - First-order rewriting (Section 4): compile the query and mappings
//     into a union of conjunctive queries evaluated directly on the stored
//     data. Perfect when the mapping assertions are linear or sticky
//     (Proposition 2); impossible in general (Proposition 3). See Rewrite.
//   - The combined approach: canonicalise equivalence classes and rewrite
//     only the mapping assertions — the practical middle ground sketched in
//     the paper's future work. See NewCombined.
//
// A federated execution engine (package internal/federation, re-exported
// here as NewFederation) implements the Section 5 prototype: sub-queries
// are routed to per-peer SPARQL services by schema and joined at the
// mediator. The mediator is concurrent: the rewriting's UCQ disjuncts
// evaluate in parallel (the planner's Union pushed below the mediator, so
// federated disjuncts overlap network latency), identical sub-queries
// coalesce in a shared singleflight fetch cache, per-peer in-flight windows
// bound the load one peer sees, and bind joins ship bindings as native
// SPARQL VALUES blocks — one probe query carries a whole batch of bindings
// joined against a single copy of the pattern, so the peer pays ONE pattern
// scan per batch instead of one per binding (the legacy UNION-of-filtered-
// copies rendering survives behind -fed-union-probes for measurement), and
// sub-queries bound for the same source travel in one batched message (the
// peer protocol's sparql-batch operation, also served over HTTP). The wire
// is streamed: peers answer sub-queries as chunked row streams (pulled on
// demand over the simulated network, NDJSON frames over HTTP), the
// mediator's joins and the parallel disjunct union consume rows as chunks
// arrive, and closing a plan early — ASK satisfied, LIMIT reached, a
// canceled query — closes the remote streams so peers stop scanning.
// Old peers that only speak the one-shot document interoperate through
// version negotiation (-fed-oneshot forces that encoding). Federated plans
// are first-class: EXPLAIN shows per-disjunct mediator plans with
// RemoteScan leaves annotated with source fan-out, probe batch size, and
// in-flight window (rpsquery -mode federation -explain; tune with
// -fed-parallel and -fed-batch on rpsd, rpsquery and rpsbench).
//
// Federation is fault-tolerant. Every sub-query runs under a retry policy
// (FederationOptions.Retry): transient failures — unreachable peers,
// mid-stream deaths, per-attempt timeouts — retry with exponential backoff
// and jitter, while terminal errors (malformed queries) fail immediately;
// the post-retry error keeps its cause chain (errors.Is still classifies
// it) with the attempt count recorded. Sources may be replica sets
// (DeployReplicatedPeers, Registry.AddReplica): retries fail over across
// endpoints, a per-endpoint circuit breaker (BreakerThreshold /
// BreakerCooldown) stops hammering dead replicas and re-probes them
// half-open after a cooldown, and hedged requests (Hedge / HedgeAfter)
// race a sub-query that outlives the source's latency EWMA against a
// replica, first answer wins. When every endpoint of a source is gone,
// FederationOptions.Partial opts into graceful degradation: the mediator
// skips the source, answers the partial certain-answer subset, and reports
// the skipped sources (FederationMetrics.SkippedSources, rendered as
// "-- partial: …" lines by EXPLAIN ANALYZE and the X-RPS-Partial header by
// rpsd); without it the query fails closed. The simulated network injects
// all of these faults (Fail, FailAfter, HealAfter, SetFlaky), rpsd/rpsquery
// expose the knobs as -fed-retries, -fed-hedge, -fed-partial (and
// rpsquery -fed-replicas), the federation_retry_*, federation_hedge_* and
// federation_breaker_* metric families land at /metrics, and rpsbench's
// JSON report measures mediator qps and tail latency at 0/10/30% unhealthy
// peers with hedging off and on.
//
// Underneath all three strategies and the federated engine sits a single
// streaming, cost-based query planner and executor (package internal/plan):
// graph patterns compile into relational-algebra operator trees — index
// scans, index nested-loop and hash joins, projection, duplicate
// elimination, filters and (parallel) unions — realised as pull iterators
// over the graph's SPO/POS/OSP indexes, with join orders chosen from the
// indexes' cardinality statistics (Graph.Stats, refined per predicate by
// Graph.PredStats). The UCQ branches a rewriting produces evaluate as a
// parallel union across goroutines with a deterministic, deduplicated
// merge. ExplainQuery (and rpsquery -explain) renders the chosen plan; see
// internal/plan's package documentation for the operator algebra and the
// cost model.
//
// Execution is observable and interruptible. Every plan iterator carries a
// context.Context: per-request deadlines and cancellation propagate from
// rpsd's handlers (and rpsquery's -query-timeout) down through the
// operator tree and across the wire into federated sub-queries, so an
// abandoned query stops producing tuples instead of running to
// completion. EXPLAIN ANALYZE (plan.Instrument, rpsquery -analyze)
// executes the query with every operator wrapped in a stats shell and
// renders the tree annotated with actual rows, Next calls, inclusive wall
// time and hash-join build sizes — the root operator's count is the answer
// cardinality. Runtime metrics live in internal/obs, a dependency-free
// registry of atomic counters, gauges and power-of-two-bucket histograms
// (zero locks and zero allocations on the hot paths) with Prometheus text
// exposition: the store publishes per-peer triple counts, epochs,
// intern-table sizes and free-list reuse, the chase its rounds, GMA
// firings and batch sizes, the federation mediator its remote calls,
// cache hits and in-flight peaks, and rpsd its per-endpoint request
// counts, error counts and latency histograms. rpsd serves /metrics and
// net/http/pprof, logs queries slower than -slow-query, and shuts down
// gracefully (draining in-flight requests) on SIGINT/SIGTERM; rpsbench's
// JSON report includes a closed-loop load benchmark (qps and latency
// percentiles under a concurrent write storm) so serving capacity is part
// of the per-PR performance trajectory.
//
// Repeated queries are served from an epoch-keyed answer cache (package
// internal/qcache): a sharded, memory-budgeted cache keyed on the query
// text, its constants and the graph's identity, validated against the
// per-shard epoch vector of the snapshot being read (Snapshot.ShardEpochs),
// so a hit is provably the answer the uncached evaluation would compute —
// any effective write to any shard the answer depends on invalidates it.
// Identical in-flight queries collapse into one evaluation (singleflight),
// size-based admission control refuses residency to answers that would
// crowd out a shard, and a CLOCK sweep with second chances evicts cold
// entries when a shard runs over budget. The cache sits under plan.ExecuteQuery and
// plan.Ask, under SPARQL evaluation, and under the federation mediator's
// remote-extension fetches (keyed there by the peers' version vector);
// rpsd enables it by default (-result-cache, -result-cache-mb), EXPLAIN
// prints "-- answer cache: hit" for resident answers, /metrics exposes the
// qcache_ families, and rpsbench sweeps off/cold/hot configurations. The
// executor underneath batches index nested-loop join probes (repeated join
// keys share one index descent; EXPLAIN ANALYZE shows batch=…/probes=…),
// the planner corrects join-order estimates for skew with per-predicate
// heavy-hitter histograms (Graph.PredTopObjects), and the store's
// free-list sizes adapt to observed batch churn.
//
// The triple store itself (package internal/rdf) is sharded and safe for
// concurrent use: SPO/OSP indexes are subject-hash partitioned and POS is
// predicate-hash partitioned, with a striped concurrent intern table
// underneath. Its read path is epoch-based and lock-free: each shard's
// indexes are persistent (copy-on-write) tries published through an atomic
// pointer, so Match/Stats/PredStats never take a lock, long scans never
// block writers, and Graph.Snapshot captures a stable point-in-time view
// for free. Every query evaluates against one such snapshot (no torn reads
// mid-join — EXPLAIN names the snapshot epoch), each parallel chase round
// reads from its round-start snapshot, and rpsd serves every request from
// a snapshot so bulk loads never stall queries. The write path is batched
// to match: bulk writers (Graph.AddAll/Merge, the Turtle and mapfile
// loaders, the chase's per-round firings) open per-shard transient
// builders that mutate the tries in place under never-reused ownership
// tokens and freeze back into an immutable state with one publication and
// one epoch stamp per shard per batch — nothing of a batch is observable
// before commit, and steady-state bulk writes approach zero net
// allocations (recycled nodes, inline node storage). Readers scale across
// cores, large batches fan their per-shard builds out across the shards,
// large cross-shard scans execute as parallel fan-outs with a
// deterministic merge, and the chase can evaluate each round's
// applicability queries concurrently (ChaseOptions.Parallel). Join orders
// are memoised in a shape-keyed plan cache so the chase's repeated
// applicability checks skip re-planning (plan.CacheStats exposes hit/miss
// counters). NewGraphSharded fixes the shard count explicitly; the rpsd,
// rpsquery and rpsbench commands expose it as -shards.
//
// The store is durable. A write-ahead log (package internal/wal) and
// snapshot checkpoints (package internal/checkpoint) sit under the graph
// through the rdf.Persistence hook: every committed batch is appended to a
// segmented, checksummed log before its shard states publish and
// group-committed per the fsync policy, and a background loop periodically
// walks a lock-free Snapshot into a checkpoint directory — the term
// dictionary once, each shard's triples as compact id streams — then
// retires the log segments the checkpoint covers. Recovery (package
// internal/durable) loads the newest checkpoint that validates end to end
// (falling back to older ones on corruption), bulk-loads it through
// rdf.Graph.RestoreBulk without re-interning a single string, replays the
// WAL tail, and truncates torn tails — so a peer restarts warm several
// times faster than re-parsing its Turtle sources, and a kill -9 at any
// byte loses nothing past the last group commit (proven by a
// crash-injection harness: internal/failfs cuts writes mid-stream,
// internal/durable's kill tests recover real SIGKILLed processes, and fuzz
// targets drive the WAL and checkpoint decoders). rpsd turns it on with
// -data-dir (tuning: -fsync always|interval|never, -checkpoint-every),
// checkpoints on graceful shutdown, skips Turtle re-parsing on a warm
// start, and exposes the wal_* and checkpoint_* metric families at
// /metrics; rpsbench's JSON report measures cold-parse vs warm-restart vs
// WAL-tail recovery.
//
// Quick start:
//
//	sys := rps.NewSystem()
//	src := sys.AddPeer("films")
//	_ = src.Add(rps.NewTriple(
//		rps.IRI("http://db1.example.org/Spiderman"),
//		rps.IRI("http://example.org/starring"),
//		rps.IRI("http://db1.example.org/Toby_Maguire")))
//	// … more peers, owl:sameAs links, mappings …
//	sys.HarvestSameAs()
//	q := rps.MustParseQuery(`SELECT ?x WHERE { ?x <http://example.org/starring> ?y }`)
//	answers, _ := rps.CertainAnswersSPARQL(sys, q)
package rps

import (
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/discovery"
	"repro/internal/federation"
	"repro/internal/pattern"
	"repro/internal/peer"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/rewrite"
	"repro/internal/simnet"
	"repro/internal/sparql"
	"repro/internal/turtle"
)

// RDF data model (package internal/rdf).
type (
	// Term is an RDF term: IRI, blank node or literal.
	Term = rdf.Term
	// Triple is an RDF triple.
	Triple = rdf.Triple
	// Graph is an indexed in-memory RDF graph.
	Graph = rdf.Graph
	// GraphSnapshot is a stable, point-in-time view of a Graph: reads take
	// no locks and later writes are never observed.
	GraphSnapshot = rdf.Snapshot
	// GraphSource is the shared read surface of Graph and GraphSnapshot;
	// query evaluation accepts either.
	GraphSource = rdf.Source
	// Namespaces maps prefixes to namespace IRIs.
	Namespaces = rdf.Namespaces
)

// Term constructors.
var (
	// IRI returns an IRI term.
	IRI = rdf.IRI
	// Blank returns a blank-node term.
	Blank = rdf.Blank
	// Literal returns a plain literal term.
	Literal = rdf.Literal
	// LangLiteral returns a language-tagged literal term.
	LangLiteral = rdf.LangLiteral
	// TypedLiteral returns a datatyped literal term.
	TypedLiteral = rdf.TypedLiteral
	// NewTriple assembles a triple.
	NewTriple = rdf.NewTriple
	// NewGraph returns an empty graph (default shard count: one per CPU).
	NewGraph = rdf.NewGraph
	// NewGraphSharded returns an empty graph with an explicit shard count.
	NewGraphSharded = rdf.NewGraphSharded
	// SetDefaultShardCount fixes the shard count NewGraph uses process-wide
	// (0 restores the automatic per-CPU default).
	SetDefaultShardCount = rdf.SetDefaultShardCount
	// FreezeGraph returns a stable point-in-time view of a source: the
	// Snapshot of a live Graph, or the source itself when already frozen.
	FreezeGraph = rdf.Freeze
	// NewNamespaces returns an empty prefix table.
	NewNamespaces = rdf.NewNamespaces
	// CommonNamespaces returns a prefix table with common bindings.
	CommonNamespaces = rdf.CommonNamespaces
)

// Graph pattern queries (package internal/pattern, Section 2.1).
type (
	// Query is a graph pattern query q(x) ← GP.
	Query = pattern.Query
	// GraphPattern is a conjunction of triple patterns.
	GraphPattern = pattern.GraphPattern
	// TriplePattern is one triple pattern.
	TriplePattern = pattern.TriplePattern
	// Elem is a variable or constant in a pattern position.
	Elem = pattern.Elem
	// Tuple is an answer tuple.
	Tuple = pattern.Tuple
	// TupleSet is a set of answer tuples.
	TupleSet = pattern.TupleSet
	// Binding is a mapping µ from variables to terms.
	Binding = pattern.Binding
)

// Pattern constructors and evaluators.
var (
	// V returns a variable element.
	V = pattern.V
	// C returns a constant element.
	C = pattern.C
	// TP assembles a triple pattern.
	TP = pattern.TP
	// NewQuery validates and builds a graph pattern query.
	NewQuery = pattern.NewQuery
	// MustQuery is NewQuery, panicking on error.
	MustQuery = pattern.MustQuery
	// EvalQuery computes Q_D (certain-answer semantics, names only).
	EvalQuery = pattern.EvalQuery
	// EvalQueryStar computes Q*_D (blank nodes included).
	EvalQueryStar = pattern.EvalQueryStar
)

// Query planning and execution (package internal/plan). Linking this
// package installs the planner as the default evaluator behind EvalQuery
// and every answering strategy.
var (
	// ExecutePattern evaluates ⟦GP⟧_D through the streaming planner.
	ExecutePattern = plan.Execute
	// ExplainPattern renders the execution plan of a graph pattern.
	ExplainPattern = plan.Explain
	// ExplainQuery renders the execution plan of a graph pattern query,
	// including projection and duplicate elimination.
	ExplainQuery = plan.ExplainQuery
	// UnionQueries evaluates a UCQ as a parallel union of per-branch plans.
	UnionQueries = plan.UnionQueries
)

// RDF Peer Systems (package internal/core, Section 2.2).
type (
	// System is an RPS P = (S, G, E).
	System = core.System
	// Peer couples a schema with a stored database.
	Peer = core.Peer
	// Schema is the set of IRIs a peer uses.
	Schema = core.Schema
	// GraphMappingAssertion is Q ⤳ Q′.
	GraphMappingAssertion = core.GraphMappingAssertion
	// EquivalenceMapping is c ≡ₑ c′.
	EquivalenceMapping = core.EquivalenceMapping
)

// NewSystem returns an empty RDF Peer System.
var NewSystem = core.NewSystem

// OWLSameAs is the owl:sameAs IRI harvested into equivalence mappings.
const OWLSameAs = core.OWLSameAs

// Chase-based query answering (package internal/chase, Section 3).
type (
	// Universal is a materialised universal solution.
	Universal = chase.Universal
	// ChaseOptions configures a chase run.
	ChaseOptions = chase.Options
	// ChaseStats reports what a chase run did.
	ChaseStats = chase.Stats
)

// Chase entry points.
var (
	// Materialize chases a system to a universal solution.
	Materialize = chase.Run
	// CertainAnswers chases and evaluates a graph pattern query.
	CertainAnswers = chase.CertainAnswers
)

// Query rewriting (package internal/rewrite, Section 4).
type (
	// RewriteOptions bounds the rewriting expansion.
	RewriteOptions = rewrite.Options
	// RewriteResult is a computed UCQ rewriting.
	RewriteResult = rewrite.Result
	// Combined is the combined (canonicalise + rewrite) answering engine.
	Combined = rewrite.Combined
)

// Rewriting entry points.
var (
	// Rewrite computes the UCQ rewriting of a query under a system.
	Rewrite = rewrite.Rewrite
	// NewCombined prepares the combined rewriter for a system.
	NewCombined = rewrite.NewCombined
)

// SPARQL fragment (package internal/sparql).
type (
	// SPARQLQuery is a parsed SPARQL query.
	SPARQLQuery = sparql.Query
	// SPARQLResult is a SELECT/ASK evaluation result.
	SPARQLResult = sparql.Result
)

// SPARQL entry points.
var (
	// ParseQuery parses a SPARQL query (SELECT/ASK fragment).
	ParseQuery = sparql.Parse
	// MustParseQuery parses with common namespaces, panicking on error.
	MustParseQuery = sparql.MustParse
)

// Turtle / N-Triples (package internal/turtle).
var (
	// ParseTurtle parses Turtle text with the common namespace bindings.
	ParseTurtle = turtle.ParseString
	// FormatNTriples serialises a graph canonically.
	FormatNTriples = turtle.FormatNTriples
	// FormatTurtle serialises a graph as Turtle.
	FormatTurtle = turtle.FormatTurtle
)

// Federation (packages internal/simnet, internal/peer,
// internal/federation — the Section 5 prototype).
type (
	// Network is the simulated P2P network.
	Network = simnet.Network
	// Node serves one peer's data on the network.
	Node = peer.Node
	// Registry is the super-peer routing table.
	Registry = peer.Registry
	// FederationEngine is the mediator.
	FederationEngine = federation.Engine
	// FederationOptions configures the mediator.
	FederationOptions = federation.Options
	// FederationMetrics describes one federated execution.
	FederationMetrics = federation.Metrics
	// FederationRetryPolicy bounds per-sub-query attempts, backoff and
	// per-attempt timeouts.
	FederationRetryPolicy = federation.RetryPolicy
	// PeerGroup is one source's replica set: the endpoints serving
	// identical data that retries fail over across.
	PeerGroup = federation.PeerGroup
	// SkippedSource names one source omitted from a partial answer.
	SkippedSource = federation.SkippedSource
	// RetryClient wraps any peer query client with bounded retries.
	RetryClient = peer.RetryClient
)

// ErrCircuitOpen marks sub-query errors fast-failed by an open circuit
// breaker (all of a source's endpoints over the failure threshold).
var ErrCircuitOpen = federation.ErrCircuitOpen

// Federation constructors.
var (
	// NewNetwork returns a simulated network.
	NewNetwork = simnet.New
	// NewRegistry returns an empty routing table.
	NewRegistry = peer.NewRegistry
	// DeployPeers registers a node per peer on a network.
	DeployPeers = peer.Deploy
	// DeployReplicatedPeers registers a replica set per peer on a network,
	// so the mediator's failover and hedging have alternates to route to.
	DeployReplicatedPeers = peer.DeployReplicated
	// NewPeerClient returns a network SPARQL client.
	NewPeerClient = peer.NewClient
	// NewFederation builds the mediator engine.
	NewFederation = federation.New
)

// Join strategies for federated execution.
const (
	// HashJoinStrategy ships pattern extensions and joins at the mediator.
	HashJoinStrategy = federation.HashJoin
	// BindJoinStrategy ships bindings to instantiate remote sub-queries.
	BindJoinStrategy = federation.BindJoin
)

// CertainAnswersSPARQL answers a conjunctive SPARQL query against a system
// using the chase (complete for every RPS). The query must be in the
// conjunctive fragment (no UNION/FILTER).
func CertainAnswersSPARQL(sys *System, q *SPARQLQuery) (*TupleSet, error) {
	pq, err := q.ToPatternQuery()
	if err != nil {
		return nil, err
	}
	return CertainAnswers(sys, pq)
}

// ---- future-work extensions (Section 5 of the paper) ----

// DiscoveryConfig tunes automatic mapping discovery (future-work item 3).
type DiscoveryConfig = discovery.Config

// DiscoveryReport holds discovered mapping candidates.
type DiscoveryReport = discovery.Report

// Discovery entry points.
var (
	// DiscoverMappings aligns entities and predicates across all peers.
	DiscoverMappings = discovery.Discover
	// ApplyDiscovered registers candidates above a confidence threshold.
	ApplyDiscovered = discovery.Apply
)

// DatalogProgram is a recursive rewriting of an RPS (future-work item 1):
// data-independent and complete even where Proposition 3 rules out UCQs.
type DatalogProgram = datalog.Program

// Datalog entry points.
var (
	// DatalogFromSystem translates a system into its Datalog rewriting.
	DatalogFromSystem = datalog.FromSystem
	// DatalogCertainAnswers answers a query by bottom-up evaluation.
	DatalogCertainAnswers = datalog.CertainAnswers
)
