package rps_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baseline"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/pattern"
	"repro/internal/peer"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/rdf"
	"repro/internal/rewrite"
	"repro/internal/simnet"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// TestAnswerCachePreservesAnswers is the zero-staleness property of the
// answer cache (internal/qcache): with the cache installed on every layer,
// each of the five rpsquery answering modes — chase, rewrite, combined,
// direct, federation — returns exactly the answer set the uncached
// evaluation returns, while irrelevant writes storm the stored databases,
// and after a relevant write the cached answer reflects the write (the old
// cached entry must not survive its epochs).
func TestAnswerCachePreservesAnswers(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is not short")
	}
	defer plan.SetAnswerCache(nil)
	defer sparql.SetAnswerCache(nil)

	property := func(seed int64) bool {
		return answerCacheRound(t, seed)
	}
	cfg := &quick.Config{
		MaxCount: 3,
		Rand:     rand.New(rand.NewSource(7)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// answerCacheRound runs one seeded instance of the property. It reports
// false (after t.Errorf) on the first violated equivalence.
func answerCacheRound(t *testing.T, seed int64) bool {
	t.Helper()
	r := rand.New(rand.NewSource(seed))

	// Figure 1 system plus a few seed-dependent actors: each extra actor of
	// Spiderman2002 on source2 gets an age on source3, so the extras flow
	// through the GMA into the chase/combined/federation answer sets.
	sys := workload.Figure1System()
	db2 := func(local string) rdf.Term {
		return rdf.IRI("http://db2.example.org/" + local)
	}
	addActor := func(name string, age int) {
		actor := db2(name)
		mustPeerAdd(t, sys.Peer("source2"),
			rdf.Triple{S: db2("Spiderman2002"), P: workload.Actor, O: actor})
		mustPeerAdd(t, sys.Peer("source3"),
			rdf.Triple{S: actor, P: workload.Age, O: rdf.Literal(fmt.Sprint(age))})
	}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		addActor(fmt.Sprintf("Extra_%d_%d", seed&0xffff, i), 20+r.Intn(60))
	}
	q := workload.Example1Query()
	// Bound the rewriting depth: the library default (64) spends seconds per
	// FullRewrite on even Figure 1, and the property quantifies over the
	// cache, not the rewriting bound — any depth must round-trip the cache
	// exactly.
	rw := rewrite.Options{MaxDepth: 4}

	// The five rpsquery modes, parameterised over the federation engine so
	// the cached phase can use an engine that carries the answer cache.
	modes := []struct {
		name string
		eval func(eng *federation.Engine) (*pattern.TupleSet, error)
	}{
		{"chase", func(*federation.Engine) (*pattern.TupleSet, error) {
			u, err := chase.Run(sys, chase.Options{})
			if err != nil {
				return nil, err
			}
			return u.CertainAnswers(q), nil
		}},
		{"rewrite", func(*federation.Engine) (*pattern.TupleSet, error) {
			rep, err := baseline.FullRewrite(sys, q, rw)
			return rep.Answers, err
		}},
		{"combined", func(*federation.Engine) (*pattern.TupleSet, error) {
			rep, err := baseline.Combined(sys, q, rw)
			return rep.Answers, err
		}},
		{"direct", func(*federation.Engine) (*pattern.TupleSet, error) {
			return baseline.NoIntegration(sys, q).Answers, nil
		}},
		{"federation", func(eng *federation.Engine) (*pattern.TupleSet, error) {
			ans, _, err := eng.Answer(q)
			return ans, err
		}},
	}
	evalAll := func(eng *federation.Engine) (map[string]*pattern.TupleSet, bool) {
		out := make(map[string]*pattern.TupleSet, len(modes))
		for _, m := range modes {
			ans, err := m.eval(eng)
			if err != nil {
				t.Errorf("seed %d: mode %s: %v", seed, m.name, err)
				return nil, false
			}
			out[m.name] = ans
		}
		return out, true
	}

	// Uncached baselines.
	plan.SetAnswerCache(nil)
	sparql.SetAnswerCache(nil)
	baseEng := deployMediator(sys, federation.Options{Rewrite: rw})
	base, ok := evalAll(baseEng)
	if !ok {
		return false
	}

	// Install one cache under every layer.
	qc := qcache.New(32 << 20)
	plan.SetAnswerCache(qc.Layer("plan"))
	sparql.SetAnswerCache(qc.Layer("sparql"))
	defer plan.SetAnswerCache(nil)
	defer sparql.SetAnswerCache(nil)
	cachedEng := deployMediator(sys, federation.Options{Rewrite: rw, AnswerCache: qc})

	// Storm irrelevant writes against source1 while the cached evaluations
	// run: every toggle bumps shard epochs without ever touching a triple
	// the query or the mappings can observe, so a cache that validates
	// epochs correctly keeps answering exactly, hit or miss.
	g := sys.Peer("source1").Data()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		noiseP := rdf.IRI("http://noise.example.org/p")
		noiseO := rdf.IRI("http://noise.example.org/o")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nt := rdf.Triple{
				S: rdf.IRI(fmt.Sprintf("http://noise.example.org/s%d", i%8)),
				P: noiseP,
				O: noiseO,
			}
			g.Add(nt)
			g.Remove(nt)
			// A toggle pair bumps the shard epochs all the invalidation
			// the property needs; yielding between pairs keeps the storm
			// from starving the evaluations under GOMAXPROCS=1.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	stormOK := true
	for round := 0; round < 2 && stormOK; round++ {
		cached, ok := evalAll(cachedEng)
		if !ok {
			stormOK = false
			break
		}
		for _, m := range modes {
			if !cached[m.name].Equal(base[m.name]) {
				t.Errorf("seed %d round %d: mode %s: cached answers diverge under write storm\ncached: %v\nuncached: %v",
					seed, round, m.name, cached[m.name].Sorted(), base[m.name].Sorted())
				stormOK = false
			}
		}
	}
	close(stop)
	wg.Wait()
	if !stormOK {
		return false
	}

	// A relevant write: a new actor with an age changes the certain answers
	// of every integration-aware mode. The still-installed cache holds
	// entries recorded before the write; serving any of them now would be a
	// stale answer.
	addActor(fmt.Sprintf("Late_%d", seed&0xffff), 30+r.Intn(40))
	cachedAfter, ok := evalAll(cachedEng)
	if !ok {
		return false
	}

	plan.SetAnswerCache(nil)
	sparql.SetAnswerCache(nil)
	fresh, ok := evalAll(baseEng)
	if !ok {
		return false
	}
	// Sentinel: the write really changed the answers, so the equality below
	// is a staleness check, not a tautology.
	if fresh["chase"].Equal(base["chase"]) {
		t.Errorf("seed %d: relevant write did not change chase answers; staleness check is vacuous", seed)
		return false
	}
	for _, m := range modes {
		if !cachedAfter[m.name].Equal(fresh[m.name]) {
			t.Errorf("seed %d: mode %s: stale answer after relevant write\ncached: %v\nfresh: %v",
				seed, m.name, cachedAfter[m.name].Sorted(), fresh[m.name].Sorted())
			return false
		}
	}
	return true
}

// deployMediator serves the system's peers on an in-process simulated
// network and returns a federation mediator over them (the shape rpsquery's
// federation mode and rpsd's /federated endpoint use).
func deployMediator(sys *core.System, fed federation.Options) *federation.Engine {
	net := simnet.New()
	reg := peer.NewRegistry()
	peer.Deploy(sys, net, reg)
	net.Register("mediator", nil)
	return federation.New(sys, reg, peer.NewClient(net, "mediator"), fed)
}

func mustPeerAdd(t *testing.T, p *core.Peer, tr rdf.Triple) {
	t.Helper()
	if err := p.Add(tr); err != nil {
		t.Fatalf("peer add %v: %v", tr, err)
	}
}
