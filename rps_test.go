package rps_test

import (
	"testing"

	rps "repro"
	"repro/internal/workload"
)

// The facade end-to-end: build the Figure 1 system through the public API
// only and reproduce Listing 1.
func TestFacadeQuickstart(t *testing.T) {
	sys := rps.NewSystem()

	s1 := sys.AddPeer("source1")
	starring := rps.IRI("http://example.org/starring")
	artist := rps.IRI("http://example.org/artist")
	age := rps.IRI("http://example.org/age")
	actor := rps.IRI("http://example.org/actor")
	sameAs := rps.IRI(rps.OWLSameAs)

	db1 := func(s string) rps.Term { return rps.IRI("http://db1.example.org/" + s) }
	db2 := func(s string) rps.Term { return rps.IRI("http://db2.example.org/" + s) }
	foaf := func(s string) rps.Term { return rps.IRI("http://xmlns.com/foaf/0.1/" + s) }

	mustAdd := func(p *rps.Peer, ts ...rps.Triple) {
		t.Helper()
		for _, tr := range ts {
			if err := p.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustAdd(s1,
		rps.NewTriple(db1("Spiderman"), starring, rps.Blank("n1")),
		rps.NewTriple(rps.Blank("n1"), artist, db1("Toby_Maguire")),
		rps.NewTriple(db1("Spiderman"), starring, rps.Blank("n2")),
		rps.NewTriple(rps.Blank("n2"), artist, db1("Kirsten_Dunst")),
		rps.NewTriple(db1("Spiderman"), sameAs, db2("Spiderman2002")),
		rps.NewTriple(db1("Toby_Maguire"), sameAs, foaf("Toby_Maguire")),
		rps.NewTriple(db1("Kirsten_Dunst"), sameAs, foaf("Kirsten_Dunst")),
	)
	s2 := sys.AddPeer("source2")
	mustAdd(s2, rps.NewTriple(db2("Spiderman2002"), actor, db2("Willem_Dafoe")))
	s3 := sys.AddPeer("source3")
	mustAdd(s3,
		rps.NewTriple(foaf("Toby_Maguire"), age, rps.Literal("39")),
		rps.NewTriple(foaf("Kirsten_Dunst"), age, rps.Literal("32")),
		rps.NewTriple(foaf("Willem_Dafoe"), age, rps.Literal("59")),
		rps.NewTriple(foaf("Willem_Dafoe"), sameAs, db2("Willem_Dafoe")),
	)
	if n := sys.HarvestSameAs(); n != 4 {
		t.Fatalf("harvested %d equivalences", n)
	}

	q1 := rps.MustQuery([]string{"x", "y"}, rps.GraphPattern{
		rps.TP(rps.V("x"), rps.C(starring), rps.V("z")),
		rps.TP(rps.V("z"), rps.C(artist), rps.V("y")),
	})
	q2 := rps.MustQuery([]string{"x", "y"}, rps.GraphPattern{
		rps.TP(rps.V("x"), rps.C(actor), rps.V("y")),
	})
	if err := sys.AddMapping(rps.GraphMappingAssertion{
		From: q2, To: q1, SrcPeer: "source2", DstPeer: "source1", Label: "Q2~>Q1",
	}); err != nil {
		t.Fatal(err)
	}

	// SPARQL in, certain answers out
	query := rps.MustParseQuery(`
		PREFIX DB1: <http://db1.example.org/>
		PREFIX ex: <http://example.org/>
		SELECT ?x ?y WHERE { DB1:Spiderman ex:starring ?z . ?z ex:artist ?x . ?x ex:age ?y }`)
	got, err := rps.CertainAnswersSPARQL(sys, query)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Fatalf("certain answers = %d, want 6: %v", got.Len(), got.Sorted())
	}
	if !got.Has(rps.Tuple{db2("Willem_Dafoe"), rps.Literal("59")}) {
		t.Error("missing the integrated Willem Dafoe answer")
	}
}

func TestFacadeMaterializeAndRewrite(t *testing.T) {
	sys := workload.Figure1System()
	u, err := rps.Materialize(sys, rps.ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := workload.Example1Query()
	if u.CertainAnswers(q).Len() != 6 {
		t.Error("materialized answers wrong")
	}
	comb := rps.NewCombined(sys)
	answers, res, err := comb.Answer(q, rps.RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated || answers.Len() != 6 {
		t.Errorf("combined answers = %d (truncated=%v)", answers.Len(), res.Truncated)
	}
}

func TestFacadeTurtleAndFederation(t *testing.T) {
	triples, err := rps.ParseTurtle(`
		@prefix DB1: <http://db1.example.org/> .
		@prefix ex: <http://example.org/> .
		DB1:Spiderman ex:year "2002" .
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 1 {
		t.Fatalf("triples = %v", triples)
	}

	sys := workload.Figure1System()
	net := rps.NewNetwork()
	reg := rps.NewRegistry()
	rps.DeployPeers(sys, net, reg)
	net.Register("mediator", nil)
	eng := rps.NewFederation(sys, reg, rps.NewPeerClient(net, "mediator"),
		rps.FederationOptions{Join: rps.BindJoinStrategy})
	got, metrics, err := eng.Answer(workload.Example1Query())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Errorf("federated answers = %d, want 6", got.Len())
	}
	if metrics.RemoteCalls == 0 {
		t.Error("metrics missing")
	}
}
