// Benchmarks regenerating every experiment of the reproduction (DESIGN.md
// per-experiment index E1–E8) plus the design-choice ablations and core
// micro-benchmarks. cmd/rpsbench prints the corresponding full tables;
// EXPERIMENTS.md records paper-vs-measured for each artifact.
package rps_test

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/discovery"
	"repro/internal/federation"
	"repro/internal/pattern"
	"repro/internal/peer"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/rewrite"
	"repro/internal/simnet"
	"repro/internal/sparql"
	"repro/internal/tgd"
	"repro/internal/turtle"
	"repro/internal/workload"
)

// BenchmarkE1_Listing1 chases the Figure 1 system and computes the Listing 1
// certain answers (Figures 1–2, Listing 1).
func BenchmarkE1_Listing1(b *testing.B) {
	q := workload.Example1Query()
	for i := 0; i < b.N; i++ {
		sys := workload.Figure1System()
		u, err := chase.Run(sys, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if u.CertainAnswers(q).Len() != 6 {
			b.Fatal("Listing 1 mismatch")
		}
	}
}

// BenchmarkE2_Listing2 rewrites and verifies the Listing 2 boolean query.
func BenchmarkE2_Listing2(b *testing.B) {
	sys := workload.Figure1System()
	stored := sys.StoredDatabase()
	q := workload.Example1Query()
	bq, err := q.Substitute(pattern.Tuple{
		rdf.IRI(workload.NSDB1 + "Toby_Maguire"), rdf.Literal("39"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rewrite.Rewrite(bq, sys, rewrite.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Ask(stored) {
			b.Fatal("Listing 2 mismatch")
		}
	}
}

// BenchmarkE3_ChaseScaling measures Theorem 1's PTIME data complexity:
// chase time across doubling stored-database sizes.
func BenchmarkE3_ChaseScaling(b *testing.B) {
	for _, films := range []int{25, 50, 100, 200} {
		cfg := workload.FilmConfig{Films: films, ActorsPerFilm: 3, SameAsFraction: 0.5, Seed: 7}
		stored := workload.ScaledFilmSystem(cfg).StoredDatabase().Len()
		b.Run(fmt.Sprintf("films=%d/triples=%d", films, stored), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys := workload.ScaledFilmSystem(cfg)
				b.StartTimer()
				u, err := chase.Run(sys, chase.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(u.Stats.TriplesAdded), "inferred")
			}
		})
	}
}

// BenchmarkE4_Rewriting compares the Proposition 2 strategies as |E| grows:
// full UCQ rewriting vs the combined approach vs materialisation.
func BenchmarkE4_Rewriting(b *testing.B) {
	build := func(k int) *core.System {
		sys := workload.LODSystem(workload.LODConfig{
			Peers: 2, Topology: workload.Chain, FactsPerPeer: 30,
			EntitiesPerPeer: k + 2, EquivFraction: 0, Shape: workload.Rename, Seed: 13,
		})
		for e := 0; e < k; e++ {
			_ = sys.AddEquivalence(workload.LODEntity(0, e), workload.LODEntity(1, e))
		}
		return sys
	}
	q := workload.CoreQuery(1)
	for _, k := range []int{0, 4, 8} {
		sys := build(k)
		b.Run(fmt.Sprintf("full-rewrite/E=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rewrite.Rewrite(q, sys, rewrite.Options{MaxQueries: 2000000})
				if err != nil {
					b.Fatal(err)
				}
				res.Evaluate(sys.StoredDatabase())
				b.ReportMetric(float64(res.Size()), "disjuncts")
			}
		})
		b.Run(fmt.Sprintf("combined/E=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comb := rewrite.NewCombined(sys)
				if _, _, err := comb.Answer(q, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("materialize/E=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Materialize(sys, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_NonFORewritability measures Proposition 3: UCQ growth of the
// depth-bounded rewriting under the transitive-closure mapping vs the
// always-complete chase.
func BenchmarkE5_NonFORewritability(b *testing.B) {
	A := rdf.IRI("http://e/A")
	sigma := []rewrite.TripleTGD{{
		Body: pattern.GraphPattern{
			pattern.TP(pattern.V("x"), pattern.C(A), pattern.V("z")),
			pattern.TP(pattern.V("z"), pattern.C(A), pattern.V("y")),
		},
		Head: pattern.GraphPattern{pattern.TP(pattern.V("x"), pattern.C(A), pattern.V("y"))},
	}}
	ask := pattern.Query{GP: pattern.GraphPattern{
		pattern.TP(pattern.C(rdf.IRI("http://e/n0")), pattern.C(A), pattern.C(rdf.IRI("http://e/n8"))),
	}}
	for _, depth := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("rewrite-depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rewrite.RewriteTGDs(ask, sigma, rewrite.Options{MaxDepth: depth, MaxQueries: 2000000})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Size()), "disjuncts")
			}
		})
	}
	for _, L := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("chase-chain=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys := transitiveChainSystem(L)
				b.StartTimer()
				if _, err := chase.Run(sys, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func transitiveChainSystem(n int) *core.System {
	sys := core.NewSystem()
	p := sys.AddPeer("p")
	A := rdf.IRI("http://e/A")
	for i := 0; i < n; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/n%d", i))
		o := rdf.IRI(fmt.Sprintf("http://e/n%d", i+1))
		if err := p.Add(rdf.Triple{S: s, P: A, O: o}); err != nil {
			panic(err)
		}
	}
	from := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(A), pattern.V("z")),
		pattern.TP(pattern.V("z"), pattern.C(A), pattern.V("y")),
	})
	to := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(A), pattern.V("y")),
	})
	if err := sys.AddMapping(core.GraphMappingAssertion{From: from, To: to, SrcPeer: "p", DstPeer: "p"}); err != nil {
		panic(err)
	}
	return sys
}

// BenchmarkE6_Stickiness runs the Definition 4 marking procedure on the
// paper's dependency sets.
func BenchmarkE6_Stickiness(b *testing.B) {
	sys := workload.Figure1System()
	var sigma []tgd.TGD
	for _, e := range sys.E {
		sigma = append(sigma, core.EquivalenceTGDs(e)...)
	}
	sigma = append(sigma, core.MappingTGD(workload.FilmGMA()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tgd.Classify(sigma)
		if c.Linear {
			b.Fatal("full encoding must not be linear")
		}
	}
}

// BenchmarkE7_Federation measures the Section 5 prototype across peer
// counts and topologies.
func BenchmarkE7_Federation(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		for _, top := range []workload.Topology{workload.Chain, workload.Star, workload.Cycle} {
			b.Run(fmt.Sprintf("peers=%d/%s", k, top), func(b *testing.B) {
				sys := workload.LODSystem(workload.LODConfig{
					Peers: k, Topology: top, FactsPerPeer: 10, EntitiesPerPeer: 8,
					Shape: workload.Rename, Seed: 21,
				})
				net := simnet.New()
				reg := peer.NewRegistry()
				peer.Deploy(sys, net, reg)
				net.Register("mediator", nil)
				eng := federation.New(sys, reg, peer.NewClient(net, "mediator"), federation.Options{})
				q := workload.CoreQuery(k - 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := eng.Answer(q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(net.Stats().Calls)/float64(b.N), "calls/op")
			})
		}
	}
}

// BenchmarkE8_Baselines measures the completeness strategies across hop
// distances (the related-work gap).
func BenchmarkE8_Baselines(b *testing.B) {
	for _, hops := range []int{1, 2, 4} {
		sys := workload.HopSystem(hops, 6, 3)
		q := workload.CoreQuery(hops)
		b.Run(fmt.Sprintf("chase/hops=%d", hops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Materialize(sys, q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("two-tier/hops=%d", hops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.TwoTier(sys, q)
			}
		})
		b.Run(fmt.Sprintf("full-rewrite/hops=%d", hops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.FullRewrite(sys, q, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Equiv compares the chase's equivalence strategies
// (copy vs canonical representative).
func BenchmarkAblation_Equiv(b *testing.B) {
	cfg := workload.FilmConfig{Films: 40, ActorsPerFilm: 3, SameAsFraction: 1.0, Seed: 5}
	for _, mode := range []struct {
		name string
		eq   chase.EquivStrategy
	}{{"copy", chase.EquivCopy}, {"canonical", chase.EquivCanonical}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys := workload.ScaledFilmSystem(cfg)
				b.StartTimer()
				u, err := chase.Run(sys, chase.Options{Equiv: mode.eq})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(u.Graph.Len()), "triples")
			}
		})
	}
}

// BenchmarkAblation_ChaseDelta compares naive fixpoint scheduling with the
// delta work-list.
func BenchmarkAblation_ChaseDelta(b *testing.B) {
	cfg := workload.FilmConfig{Films: 40, ActorsPerFilm: 3, SameAsFraction: 0.5, Seed: 7}
	for _, mode := range []struct {
		name string
		m    chase.Mode
	}{{"naive", chase.ModeNaive}, {"delta", chase.ModeDelta}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys := workload.ScaledFilmSystem(cfg)
				b.StartTimer()
				if _, err := chase.Run(sys, chase.Options{Mode: mode.m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_JoinOrder compares greedy vs textual BGP join ordering
// on an adversarial pattern order.
func BenchmarkAblation_JoinOrder(b *testing.B) {
	g := rdf.NewGraph()
	common := rdf.IRI("http://e/common")
	rare := rdf.IRI("http://e/rare")
	for i := 0; i < 50000; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/s%d", i)),
			P: common,
			O: rdf.IRI(fmt.Sprintf("http://e/o%d", i%17)),
		})
	}
	g.Add(rdf.Triple{S: rdf.IRI("http://e/s1"), P: rare, O: rdf.Literal("target")})
	gp := pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(common), pattern.V("y")),
		pattern.TP(pattern.V("x"), pattern.C(rare), pattern.C(rdf.Literal("target"))),
	}
	b.Run("textual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.EvalTextualOrder(g, gp)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pattern.EvalGreedy(g, gp)
		}
	})
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.Execute(g, gp)
		}
	})
}

// BenchmarkPlanVsNaive tracks the streaming cost-based planner against the
// Definition 1 oracle on the canonical join shapes (star and chain, with a
// selective pattern the planner must schedule first), and the parallel
// Union against serial evaluation on the UCQ shape internal/rewrite
// produces. These pin the planner's perf trajectory from the PR that
// introduced it onward.
func BenchmarkPlanVsNaive(b *testing.B) {
	shapes := []struct {
		name  string
		build func() (*rdf.Graph, pattern.GraphPattern)
	}{
		{"star", starShape}, {"chain", chainShape},
	}
	for _, shape := range shapes {
		g, gp := shape.build()
		rows := len(pattern.EvalNaive(g, gp))
		check := func(b *testing.B, got []pattern.Binding) {
			if len(got) != rows {
				b.Fatalf("rows = %d, want %d", len(got), rows)
			}
		}
		b.Run(shape.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				check(b, pattern.EvalNaive(g, gp))
			}
		})
		b.Run(shape.name+"/plan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				check(b, plan.Execute(g, gp))
			}
		})
	}
	for _, branches := range []int{2, 8} {
		g, qs := ucqShape(branches)
		b.Run(fmt.Sprintf("ucq/branches=%d/serial", branches), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := pattern.NewTupleSet()
				for _, q := range qs {
					out.Merge(plan.ExecuteQuery(g, q))
				}
			}
		})
		b.Run(fmt.Sprintf("ucq/branches=%d/parallel", branches), func(b *testing.B) {
			if runtime.GOMAXPROCS(0) <= 1 {
				b.Skip("parallel union degrades to serial with GOMAXPROCS=1; the numbers would be misleading (re-run with -cpu 4)")
			}
			for i := 0; i < b.N; i++ {
				plan.UnionQueries(g, qs, false)
			}
		})
	}
}

// starShape: a hub query {?x p1 ?y1 . ?x p2 ?y2 . ?x p3 ?y3} where p1 is
// bulky, p2 medium and p3 rare; textual-order naive evaluation materialises
// the bulky extension first.
func starShape() (*rdf.Graph, pattern.GraphPattern) {
	g := rdf.NewGraph()
	p1, p2, p3 := rdf.IRI("http://e/p1"), rdf.IRI("http://e/p2"), rdf.IRI("http://e/p3")
	for i := 0; i < 3000; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/s%d", i))
		g.Add(rdf.Triple{S: s, P: p1, O: rdf.IRI(fmt.Sprintf("http://e/a%d", i))})
		if i%10 == 0 {
			g.Add(rdf.Triple{S: s, P: p2, O: rdf.IRI(fmt.Sprintf("http://e/b%d", i))})
		}
		if i%1000 == 0 {
			g.Add(rdf.Triple{S: s, P: p3, O: rdf.IRI(fmt.Sprintf("http://e/c%d", i))})
		}
	}
	return g, pattern.GraphPattern{
		pattern.TP(pattern.V("x"), pattern.C(p1), pattern.V("y1")),
		pattern.TP(pattern.V("x"), pattern.C(p2), pattern.V("y2")),
		pattern.TP(pattern.V("x"), pattern.C(p3), pattern.V("y3")),
	}
}

// chainShape: a path query {?a p ?b . ?b q ?c . ?c r ?d} whose selective
// final hop the planner schedules first, walking the chain backwards
// through the POS index.
func chainShape() (*rdf.Graph, pattern.GraphPattern) {
	g := rdf.NewGraph()
	p, q, r := rdf.IRI("http://e/p"), rdf.IRI("http://e/q"), rdf.IRI("http://e/r")
	for i := 0; i < 3000; i++ {
		a := rdf.IRI(fmt.Sprintf("http://e/a%d", i))
		bn := rdf.IRI(fmt.Sprintf("http://e/b%d", i))
		cn := rdf.IRI(fmt.Sprintf("http://e/c%d", i%50))
		g.Add(rdf.Triple{S: a, P: p, O: bn})
		g.Add(rdf.Triple{S: bn, P: q, O: cn})
	}
	g.Add(rdf.Triple{S: rdf.IRI("http://e/c0"), P: r, O: rdf.Literal("end")})
	return g, pattern.GraphPattern{
		pattern.TP(pattern.V("a"), pattern.C(p), pattern.V("b")),
		pattern.TP(pattern.V("b"), pattern.C(q), pattern.V("c")),
		pattern.TP(pattern.V("c"), pattern.C(r), pattern.V("d")),
	}
}

// ucqShape: a union of per-branch two-pattern conjunctive queries — the
// shape a saturated rewriting hands to the executor — with enough work per
// branch for the parallel union's fan-out to matter.
func ucqShape(branches int) (*rdf.Graph, []pattern.Query) {
	g := rdf.NewGraph()
	var qs []pattern.Query
	for k := 0; k < branches; k++ {
		p := rdf.IRI(fmt.Sprintf("http://e/p%d", k))
		q := rdf.IRI(fmt.Sprintf("http://e/q%d", k))
		for i := 0; i < 2000; i++ {
			s := rdf.IRI(fmt.Sprintf("http://e/b%d_s%d", k, i))
			m := rdf.IRI(fmt.Sprintf("http://e/b%d_m%d", k, i%100))
			g.Add(rdf.Triple{S: s, P: p, O: m})
			g.Add(rdf.Triple{S: m, P: q, O: rdf.Literal(fmt.Sprintf("v%d", i%100))})
		}
		qs = append(qs, pattern.MustQuery([]string{"x", "v"}, pattern.GraphPattern{
			pattern.TP(pattern.V("x"), pattern.C(p), pattern.V("m")),
			pattern.TP(pattern.V("m"), pattern.C(q), pattern.V("v")),
		}))
	}
	return g, qs
}

// BenchmarkAblation_FederationJoin compares the two federated join
// strategies on a selective query against a bulky source.
func BenchmarkAblation_FederationJoin(b *testing.B) {
	for _, join := range []struct {
		name string
		j    federation.JoinStrategy
	}{{"hash", federation.HashJoin}, {"bind", federation.BindJoin}} {
		b.Run(join.name, func(b *testing.B) {
			sys := bulkFederationSystem(5000)
			net := simnet.New()
			reg := peer.NewRegistry()
			peer.Deploy(sys, net, reg)
			net.Register("mediator", nil)
			eng := federation.New(sys, reg, peer.NewClient(net, "mediator"),
				federation.Options{Join: join.j})
			q := pattern.MustQuery([]string{"n"}, pattern.GraphPattern{
				pattern.TP(pattern.C(rdf.IRI("http://e/alice")), pattern.C(rdf.IRI("http://e/likes")), pattern.V("x")),
				pattern.TP(pattern.V("x"), pattern.C(rdf.IRI("http://e/name")), pattern.V("n")),
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Answer(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(net.Stats().BytesSent+net.Stats().BytesRecv)/float64(b.N), "bytes/op")
		})
	}
}

// --- micro-benchmarks of the substrates ---

func BenchmarkMicro_GraphAdd(b *testing.B) {
	terms := make([]rdf.Term, 256)
	for i := range terms {
		terms[i] = rdf.IRI(fmt.Sprintf("http://e/t%d", i))
	}
	b.ResetTimer()
	g := rdf.NewGraph()
	for i := 0; i < b.N; i++ {
		g.Add(rdf.Triple{S: terms[i%256], P: terms[(i/256)%256], O: terms[(i/65536)%256]})
	}
}

func BenchmarkMicro_GraphMatch(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 10000; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/s%d", i%100)),
			P: rdf.IRI(fmt.Sprintf("http://e/p%d", i%10)),
			O: rdf.IRI(fmt.Sprintf("http://e/o%d", i)),
		})
	}
	p := rdf.IRI("http://e/p3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.Match(nil, &p, nil, func(rdf.Triple) bool { n++; return true })
	}
}

func BenchmarkMicro_BGPEval(b *testing.B) {
	sys := workload.ScaledFilmSystem(workload.FilmConfig{Films: 100, ActorsPerFilm: 3, SameAsFraction: 0.5, Seed: 7})
	g := sys.StoredDatabase()
	q := workload.ScaledFilmQuery(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pattern.EvalQuery(g, q)
	}
}

func BenchmarkMicro_TurtleParse(b *testing.B) {
	sys := workload.ScaledFilmSystem(workload.FilmConfig{Films: 50, ActorsPerFilm: 3, SameAsFraction: 0.5, Seed: 7})
	text := turtle.FormatNTriples(sys.StoredDatabase())
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := turtle.NewParser(text, nil).Parse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_SPARQLParse(b *testing.B) {
	const q = `PREFIX DB1: <http://db1.example.org/>
PREFIX ex: <http://example.org/>
SELECT ?x ?y WHERE { DB1:Spiderman ex:starring ?z . ?z ex:artist ?x . ?x ex:age ?y }`
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// bulkFederationSystem builds the selective-query-vs-bulky-source scenario
// of the A4 ablation.
func bulkFederationSystem(bulk int) *core.System {
	sys := core.NewSystem()
	facts := sys.AddPeer("facts")
	names := sys.AddPeer("names")
	likes := rdf.IRI("http://e/likes")
	name := rdf.IRI("http://e/name")
	if err := facts.Add(rdf.Triple{S: rdf.IRI("http://e/alice"), P: likes, O: rdf.IRI("http://e/bob")}); err != nil {
		panic(err)
	}
	for i := 0; i < bulk; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/person%d", i))
		if err := names.Add(rdf.Triple{S: s, P: name, O: rdf.Literal(fmt.Sprintf("person %d", i))}); err != nil {
			panic(err)
		}
	}
	if err := names.Add(rdf.Triple{S: rdf.IRI("http://e/bob"), P: name, O: rdf.Literal("Bob")}); err != nil {
		panic(err)
	}
	return sys
}

// fedFanSystem builds k peers, each holding one predicate's triples, and
// rename mappings Pi → P0, so querying {?x P0 ?y} yields a k-disjunct UCQ
// with one disjunct routed to each peer — the federated workload whose
// network latency the parallel mediator overlaps.
func fedFanSystem(k, factsPerPeer int) (*core.System, pattern.Query) {
	sys := core.NewSystem()
	preds := make([]rdf.Term, k)
	for i := range preds {
		preds[i] = rdf.IRI(fmt.Sprintf("http://e/P%d", i))
	}
	for i := 0; i < k; i++ {
		p := sys.AddPeer(fmt.Sprintf("peer%d", i))
		for j := 0; j < factsPerPeer; j++ {
			err := p.Add(rdf.Triple{
				S: rdf.IRI(fmt.Sprintf("http://e/s%d_%d", i, j)),
				P: preds[i],
				O: rdf.IRI(fmt.Sprintf("http://e/o%d_%d", i, j)),
			})
			if err != nil {
				panic(err)
			}
		}
	}
	for i := 1; i < k; i++ {
		m := core.GraphMappingAssertion{
			From: pattern.MustQuery([]string{"x", "y"},
				pattern.GraphPattern{pattern.TP(pattern.V("x"), pattern.C(preds[i]), pattern.V("y"))}),
			To: pattern.MustQuery([]string{"x", "y"},
				pattern.GraphPattern{pattern.TP(pattern.V("x"), pattern.C(preds[0]), pattern.V("y"))}),
			SrcPeer: fmt.Sprintf("peer%d", i),
			DstPeer: "peer0",
		}
		if err := sys.AddMapping(m); err != nil {
			panic(err)
		}
	}
	return sys, pattern.MustQuery([]string{"x", "y"},
		pattern.GraphPattern{pattern.TP(pattern.V("x"), pattern.C(preds[0]), pattern.V("y"))})
}

// BenchmarkFederatedUCQ pins the win of pushing the parallel Union below
// the mediator: a 4-disjunct UCQ whose disjuncts each route to a different
// peer, over a simnet that really sleeps 5ms per request. The serial
// mediator pays each peer's round trip sequentially; the parallel mediator
// overlaps them (expect ≥2× at 4 disjuncts on ≥4 CPUs). The bind/batch=…
// variants compare per-binding probing with batched probes at equal answer
// sets — calls/op drops as the batch grows.
func BenchmarkFederatedUCQ(b *testing.B) {
	const disjuncts = 4
	const latency = 5 * time.Millisecond
	sys, q := fedFanSystem(disjuncts, 8)
	for _, mode := range []struct {
		name string
		opts federation.Options
	}{
		{"serial", federation.Options{Serial: true}},
		{"parallel", federation.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.name == "parallel" && runtime.GOMAXPROCS(0) <= 1 {
				b.Skip("parallel mediator degrades to serial with GOMAXPROCS=1; the numbers would be misleading (re-run with -cpu 4)")
			}
			net := simnet.New(simnet.WithLatency(latency), simnet.WithRealDelay())
			reg := peer.NewRegistry()
			peer.Deploy(sys, net, reg)
			net.Register("mediator", nil)
			eng := federation.New(sys, reg, peer.NewClient(net, "mediator"), mode.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := eng.Answer(q)
				if err != nil {
					b.Fatal(err)
				}
				if got.Len() != disjuncts*8 {
					b.Fatalf("answers = %d, want %d", got.Len(), disjuncts*8)
				}
			}
		})
	}
	bindSys, bindQ := bindBatchSystem(64)
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("bind/batch=%d", batch), func(b *testing.B) {
			net := simnet.New()
			reg := peer.NewRegistry()
			peer.Deploy(bindSys, net, reg)
			net.Register("mediator", nil)
			eng := federation.New(bindSys, reg, peer.NewClient(net, "mediator"),
				federation.Options{Join: federation.BindJoin, BatchSize: batch})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := eng.Answer(bindQ)
				if err != nil {
					b.Fatal(err)
				}
				if got.Len() != 64 {
					b.Fatalf("answers = %d, want 64", got.Len())
				}
			}
			b.ReportMetric(float64(net.Stats().Calls)/float64(b.N), "calls/op")
		})
	}
}

// bindBatchSystem is the bind-join batching scenario: a selective fact peer
// whose n bindings probe a bulky name peer — per-binding probing costs
// 1 + n requests, batched probing 1 + ⌈n/B⌉.
func bindBatchSystem(n int) (*core.System, pattern.Query) {
	sys := core.NewSystem()
	facts := sys.AddPeer("facts")
	bulk := sys.AddPeer("bulk")
	likes := rdf.IRI("http://e/likes")
	name := rdf.IRI("http://e/name")
	alice := rdf.IRI("http://e/alice")
	for i := 0; i < n; i++ {
		person := rdf.IRI(fmt.Sprintf("http://e/person%d", i))
		if err := facts.Add(rdf.Triple{S: alice, P: likes, O: person}); err != nil {
			panic(err)
		}
		if err := bulk.Add(rdf.Triple{S: person, P: name, O: rdf.Literal(fmt.Sprintf("n%d", i))}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 2000; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/other%d", i))
		if err := bulk.Add(rdf.Triple{S: s, P: name, O: rdf.Literal(fmt.Sprintf("x%d", i))}); err != nil {
			panic(err)
		}
	}
	q := pattern.MustQuery([]string{"n"}, pattern.GraphPattern{
		pattern.TP(pattern.C(alice), pattern.C(likes), pattern.V("x")),
		pattern.TP(pattern.V("x"), pattern.C(name), pattern.V("n")),
	})
	return sys, q
}

// BenchmarkE9_Datalog measures the Datalog rewriting (future-work item 1)
// on the Proposition 3 workload, against the chase.
func BenchmarkE9_Datalog(b *testing.B) {
	for _, L := range []int{16, 64} {
		sys := transitiveChainSystem(L)
		q := pattern.MustQuery([]string{"x", "y"}, pattern.GraphPattern{
			pattern.TP(pattern.V("x"), pattern.C(rdf.IRI("http://e/A")), pattern.V("y")),
		})
		b.Run(fmt.Sprintf("datalog/L=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := datalog.CertainAnswers(sys, q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("chase/L=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := transitiveChainSystem(L)
				b.StartTimer()
				if _, err := chase.Run(fresh, chase.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_Discovery measures automatic mapping discovery on twin
// workloads (future-work item 3).
func BenchmarkE10_Discovery(b *testing.B) {
	for _, n := range []int{25, 100} {
		sys, _ := workload.TwinSystem(workload.TwinConfig{
			Entities: n, LiteralsPerEntity: 4, Facts: 2 * n, Noise: 0.2, Seed: 17,
		})
		b.Run(fmt.Sprintf("entities=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report := discovery.Discover(sys, discovery.Config{})
				if report.Total() == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// BenchmarkAblation_Incremental measures absorbing one update into a
// materialised solution vs re-chasing from scratch.
func BenchmarkAblation_Incremental(b *testing.B) {
	cfg := workload.FilmConfig{Films: 100, ActorsPerFilm: 3, SameAsFraction: 0.5, Seed: 7}
	b.Run("incremental", func(b *testing.B) {
		sys := workload.ScaledFilmSystem(cfg)
		u, err := chase.Run(sys, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := rdf.Triple{
				S: rdf.IRI(fmt.Sprintf("http://db2.example.org/Bench%d", i)),
				P: workload.Actor,
				O: rdf.IRI(fmt.Sprintf("http://db2.example.org/BenchActor%d", i)),
			}
			if err := u.AddTriple("source2", t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rechase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := workload.ScaledFilmSystem(cfg)
			t := rdf.Triple{
				S: rdf.IRI(fmt.Sprintf("http://db2.example.org/Bench%d", i)),
				P: workload.Actor,
				O: rdf.IRI(fmt.Sprintf("http://db2.example.org/BenchActor%d", i)),
			}
			if err := sys.Peer("source2").Add(t); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := chase.Run(sys, chase.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSink defeats dead-code elimination in the read benchmarks.
var benchSink int

// shardedReadGraph loads n triples over 3000 subjects and 7 predicates
// into a store with the given shard count.
func shardedReadGraph(shards, n int) (*rdf.Graph, []rdf.Term) {
	g := rdf.NewGraphSharded(shards)
	ts := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/s%d", i%3000)),
			P: rdf.IRI(fmt.Sprintf("http://e/p%d", i%7)),
			O: rdf.IRI(fmt.Sprintf("http://e/o%d", i)),
		})
	}
	g.AddAll(ts)
	subjects := make([]rdf.Term, 3000)
	for i := range subjects {
		subjects[i] = rdf.IRI(fmt.Sprintf("http://e/s%d", i))
	}
	return g, subjects
}

// BenchmarkShardedRead measures concurrent read throughput on the sharded
// store: every benchmark goroutine issues subject-bound index probes (the
// executor's hot path). Run with -cpu 1,4 to see read scaling; the
// shards=1 variant is the contention baseline.
func BenchmarkShardedRead(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g, subjects := shardedReadGraph(shards, 30000)
			var rows atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i, n := 0, 0
				for pb.Next() {
					s := subjects[i%len(subjects)]
					i++
					g.Match(&s, nil, nil, func(rdf.Triple) bool { n++; return true })
				}
				rows.Add(int64(n))
			})
			benchSink += int(rows.Load())
		})
	}
}

// BenchmarkConcurrentLoad measures bulk-load throughput: AddAll fans the
// batch out across the shards when more than one CPU is available, so
// -cpu 1,4 shows write scaling. shards=1 pins the serial baseline.
func BenchmarkConcurrentLoad(b *testing.B) {
	const n = 50000
	ts := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/s%d", i%10000)),
			P: rdf.IRI(fmt.Sprintf("http://e/p%d", i%17)),
			O: rdf.IRI(fmt.Sprintf("http://e/o%d", i%5000)),
		})
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := rdf.NewGraphSharded(shards)
				if g.AddAll(ts) != n {
					b.Fatal("short load")
				}
			}
		})
	}
}

// BenchmarkFanoutScan compares the sequential and cross-shard parallel
// forms of a big object-bound scan — the access path whose OSP partition
// spans every shard.
func BenchmarkFanoutScan(b *testing.B) {
	g := rdf.NewGraphSharded(8)
	hub := rdf.IRI("http://e/hub")
	ts := make([]rdf.Triple, 0, 80000)
	for i := 0; i < 80000; i++ {
		ts = append(ts, rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("http://e/s%d", i)),
			P: rdf.IRI(fmt.Sprintf("http://e/p%d", i%11)),
			O: hub,
		})
	}
	g.AddAll(ts)
	tp := pattern.TP(pattern.V("s"), pattern.V("p"), pattern.C(hub))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rows := len(plan.Drain((&plan.IndexScan{TP: tp}).Open(context.Background(), g))); rows != 80000 {
				b.Fatalf("rows = %d", rows)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		if runtime.GOMAXPROCS(0) <= 1 {
			b.Skip("fan-out scan degrades to serial with GOMAXPROCS=1; the numbers would be misleading (re-run with -cpu 4)")
		}
		sc := &plan.IndexScan{TP: tp, Fanout: g.ShardCount()}
		for i := 0; i < b.N; i++ {
			if rows := len(plan.Drain(sc.Open(context.Background(), g))); rows != 80000 {
				b.Fatalf("rows = %d", rows)
			}
		}
	})
}

// BenchmarkPlanCache pins the win of the shape-keyed plan cache on the
// chase-style workload: re-planning the same 3-pattern shape repeatedly.
func BenchmarkPlanCache(b *testing.B) {
	g, gp := chainShape()
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			plan.SetCacheEnabled(enabled)
			defer plan.SetCacheEnabled(true)
			plan.FlushCache()
			for i := 0; i < b.N; i++ {
				benchSink += len(plan.Execute(g, gp))
			}
		})
	}
}

// BenchmarkSnapshotReadUnderWrites is the PR 4 contention benchmark: the
// same mix of subject- and predicate-bound probes, on an idle store versus
// while a dedicated writer storms single-triple Add/Remove through the
// shards. With the epoch-based read path Match takes no locks, so the two
// numbers should sit within a small factor of each other and readers
// should scale with -cpu (on the seed's RWMutex shards, the writer
// serialised every reader behind it).
func BenchmarkSnapshotReadUnderWrites(b *testing.B) {
	for _, storm := range []bool{false, true} {
		name := "idle"
		if storm {
			name = "storm"
		}
		b.Run(name, func(b *testing.B) {
			g, subjects := shardedReadGraph(8, 30000)
			p0 := rdf.IRI("http://e/p0")
			stop := make(chan struct{})
			var wrote atomic.Int64
			if storm {
				go func() {
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						t := rdf.Triple{
							S: rdf.IRI(fmt.Sprintf("http://e/w%d", i%4096)),
							P: rdf.IRI(fmt.Sprintf("http://e/p%d", i%7)),
							O: rdf.IRI(fmt.Sprintf("http://e/wo%d", i%4096)),
						}
						if !g.Add(t) {
							g.Remove(t)
						}
						wrote.Add(1)
						i++
					}
				}()
			}
			var rows atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i, n := 0, 0
				for pb.Next() {
					s := subjects[i%len(subjects)]
					i++
					g.Match(&s, nil, nil, func(rdf.Triple) bool { n++; return true })
					if i%8 == 0 {
						g.Match(nil, &p0, nil, func(rdf.Triple) bool { n++; return n%64 != 0 })
					}
				}
				rows.Add(int64(n))
			})
			b.StopTimer()
			close(stop)
			benchSink += int(rows.Load())
			if storm {
				b.ReportMetric(float64(wrote.Load()), "writes")
			}
		})
	}
}

// BenchmarkSnapshotCapture measures Graph.Snapshot: O(shards) pointer
// loads, no copying — cheap enough to take one per query.
func BenchmarkSnapshotCapture(b *testing.B) {
	g, _ := shardedReadGraph(8, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += g.Snapshot().Len()
	}
}

// benchTerms pre-builds term pools so the write benchmarks measure the
// store's write path, not fmt.Sprintf.
func benchTerms(prefix string, n int) []rdf.Term {
	ts := make([]rdf.Term, n)
	for i := range ts {
		ts[i] = rdf.IRI(fmt.Sprintf("http://bench/%s%d", prefix, i))
	}
	return ts
}

// benchTriples deterministically mixes the pools into m distinct triples —
// the shape of a mapping workload: many subjects, few predicates, a middle
// number of objects.
func benchTriples(m int) []rdf.Triple {
	subs := benchTerms("s", 4096)
	preds := benchTerms("p", 16)
	// 1021 is prime and coprime with the 65536-step (s, p) cycle, so the
	// object index never repeats for the same (s, p) within 65536×1021
	// triples: every generated triple is distinct.
	objs := benchTerms("o", 1021)
	ts := make([]rdf.Triple, m)
	for i := range ts {
		ts[i] = rdf.Triple{
			S: subs[i%len(subs)],
			P: preds[(i/len(subs))%len(preds)],
			O: objs[(i*2654435761)%len(objs)],
		}
	}
	return ts
}

// BenchmarkAddSingle is the PR 5 write-path microbenchmark: single-triple
// Add against a pre-populated store, terms pre-interned, so ns/op and
// allocs/op isolate the copied trie path (run with -benchmem; the PR 5
// acceptance bar is allocs/op at most half the PR 4 figure).
func BenchmarkAddSingle(b *testing.B) {
	const baseLen = 20000
	base := benchTriples(baseLen)
	// size the fresh pool to b.N so the loop never wraps: re-adding a
	// present triple takes the read-only duplicate probe, not the write
	// path this benchmark exists to measure
	pool := 1 << 20
	for pool < b.N+baseLen {
		pool <<= 1
	}
	fresh := benchTriples(pool)[baseLen:]
	g := rdf.NewGraph()
	g.AddAll(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(fresh[i])
	}
}

// BenchmarkAddAllBatch measures bulk load through the batch write path
// (one transient build, one publication and one epoch stamp per shard per
// batch) in ns/triple, against the mutable-map reference that PR 4
// replaced — the acceptance bar is staying within 1.5× of it.
func BenchmarkAddAllBatch(b *testing.B) {
	ts := benchTriples(100000)
	b.Run("graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := rdf.NewGraphSharded(1)
			g.AddAll(ts)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(ts)), "ns/triple")
		}
	})
	b.Run("mapBaseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spo := map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}{}
			n := 0
			for _, t := range ts {
				pm, ok := spo[t.S]
				if !ok {
					pm = map[rdf.Term]map[rdf.Term]struct{}{}
					spo[t.S] = pm
				}
				om, ok := pm[t.P]
				if !ok {
					om = map[rdf.Term]struct{}{}
					pm[t.P] = om
				}
				if _, dup := om[t.O]; !dup {
					om[t.O] = struct{}{}
					n++
				}
			}
			if n == 0 {
				b.Fatal("empty load")
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(ts)), "ns/triple")
		}
	})
}

// BenchmarkChaseRoundWrite models the chase's per-round write phase: each
// op opens a batch, adds one round's worth of fired triples (most new,
// some duplicating earlier rounds), and commits — one publication per
// shard per round instead of one per triple.
func BenchmarkChaseRoundWrite(b *testing.B) {
	const round = 2048
	ts := benchTriples(1 << 20)
	g := rdf.NewGraph()
	g.AddAll(ts[:round])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * round * 3 / 4) % (len(ts) - round)
		batch := g.NewBatch()
		for _, t := range ts[lo : lo+round] {
			batch.Add(t)
		}
		batch.Commit()
	}
}
